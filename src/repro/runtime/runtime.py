"""The concurrent multi-request runtime: admission, workers, ordered commit.

:class:`MiddlewareRuntime` turns a single-shot :class:`~repro.middleware.qasom.QASOM`
instance into a request broker that admits many
:class:`~repro.composition.request.UserRequest` submissions against one
shared environment:

* **Admission control** — a bounded FIFO queue; submissions beyond
  ``queue_depth`` are rejected immediately
  (:class:`~repro.errors.AdmissionRejectedError`) so overload surfaces as
  backpressure, not unbounded latency.  Per-request deadlines reuse the
  resilience layer's :class:`~repro.resilience.policies.TimeoutPolicy`:
  a request whose deadline lapses while queued is expired, never run.
* **Snapshot isolation** — every composition runs against a
  generation-consistent registry snapshot
  (:class:`~repro.runtime.snapshot.SnapshotManager`), so churn proceeding
  on the environment can never show a half-mutated world to an in-flight
  selection.
* **Discovery batching & request coalescing** — capability lookups from
  co-arriving requests coalesce through one
  :class:`~repro.runtime.batching.DiscoveryBatcher` (and the middleware's
  shared semantic match cache), and whole composition results for
  *identical* requests coalesce through a
  :class:`~repro.runtime.batching.RequestCoalescer` — the throughput win
  on repeated task templates under the thread backend, where the GIL
  serialises selection.
* **Pluggable execution backends** — the CPU-bound composition step runs
  on an :class:`~repro.runtime.backends.ExecutionBackend`:
  ``backend="thread"`` composes inline on the worker threads (full
  feature support), ``backend="process"`` dispatches to a pool of worker
  processes recomposing on pickled registry snapshots — genuinely
  parallel selection beyond the GIL, still byte-identical to serial.
* **Deterministic ordered commit** — composition is concurrent, but
  executions commit strictly in admission order under the environment's
  shared clock/RNG, so a pooled run produces byte-identical plans *and*
  execution reports to the same workload run serially.  Selection itself
  is deterministic per request (each worker owns a private selector), so
  concurrency never changes what gets composed.

See ``docs/RUNTIME.md`` for the architecture and tuning guide.
"""

from __future__ import annotations

import threading
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.errors import (
    AdmissionRejectedError,
    DeadlineExceededError,
    MiddlewareRuntimeError,
    NoCandidateError,
    RuntimeShutdownError,
    UnsupportedBackendFeatureError,
    WorkerCrashError,
    WorkerProcessCrash,
)
from repro.composition.qassa import QASSA
from repro.composition.request import UserRequest
from repro.composition.selection import CandidateSets, CompositionPlan
from repro.composition.selection_cache import SelectionCache
from repro.observability import events as rt_events
from repro.observability.context import TraceContext
from repro.observability.events import NULL_RECORDER, FlightRecorder
from repro.observability.forensics import ForensicReporter
from repro.resilience.policies import TimeoutPolicy
from repro.runtime.admission import build_admission_controller
from repro.runtime.backends import BACKEND_CHOICES, build_backend
from repro.runtime.batching import DiscoveryBatcher, RequestCoalescer
from repro.runtime.chaos import ChaosPolicy, InjectedSnapshotFailure
from repro.runtime.handle import RequestStatus, RunHandle, RunSpec
from repro.runtime.snapshot import SnapshotManager
from repro.runtime.supervisor import RetryBudget, WorkerSupervisor

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.middleware.qasom import QASOM, RunResult


@dataclass(frozen=True, kw_only=True)
class RuntimeConfig:
    """Tuning knobs of the concurrent runtime.

    ``backend`` selects the :class:`~repro.runtime.backends.ExecutionBackend`
    that runs the CPU-bound composition step: ``"thread"`` (inline on the
    worker threads — full feature support) or ``"process"`` (a pool of
    worker processes recomposing on pickled registry snapshots — parallel
    selection beyond the GIL; chaos injection, the flight recorder,
    forensics and cross-layer estimation are unsupported there and raise
    :class:`~repro.errors.UnsupportedBackendFeatureError` at construction).
    An unknown backend name raises :class:`ValueError` listing the valid
    choices.  ``workers`` bounds the composition pool for either backend;
    ``queue_depth`` bounds the admission queue (beyond it, submissions are
    rejected — backpressure); ``deadline`` is the per-request completion
    budget on the wall clock (the default policy has no timeout).
    ``drain_on_close`` controls whether :meth:`MiddlewareRuntime.close`
    finishes the queued work or cancels it.  ``worker_threads`` is the
    deprecated pre-backend spelling of the pool size; when given it maps
    onto ``workers`` with a :class:`DeprecationWarning`.

    ``admission`` selects the backpressure policy: ``"static"`` (the
    default — the fixed ``queue_depth`` bound, byte-identical to the
    pre-policy runtime) or ``"adaptive"`` (an
    :class:`~repro.runtime.admission.AdaptiveAdmissionController` that
    tightens the effective depth under load via Little's law, keeping the
    expected admission wait under ``admission_target_delay_ms``; λ and W
    are measured over ``admission_window_seconds`` on the simulated
    clock, and the depth never drops below ``admission_min_depth``).
    """

    backend: str = "thread"
    workers: int = 4
    #: Deprecated alias of ``workers`` (the pre-backend spelling); mapped
    #: onto ``workers`` in ``__post_init__`` with a DeprecationWarning.
    worker_threads: Optional[int] = None
    queue_depth: int = 64
    deadline: TimeoutPolicy = field(default_factory=TimeoutPolicy)
    drain_on_close: bool = True
    admission: str = "static"
    admission_target_delay_ms: float = 250.0
    admission_window_seconds: float = 5.0
    admission_min_depth: int = 1
    #: Fault-domain knobs: ``max_requeues`` bounds how often one request may
    #: be re-admitted after a worker crash / transient runtime fault;
    #: the ``retry_budget_*`` trio parameterises the token bucket that caps
    #: the fraction of traffic that may be requeue work (each admission
    #: deposits ``ratio`` tokens up to ``cap``; each requeue spends one);
    #: ``close_join_seconds`` bounds how long :meth:`MiddlewareRuntime.close`
    #: waits for each worker before declaring it leaked.
    max_requeues: int = 2
    retry_budget_ratio: float = 0.1
    retry_budget_initial: float = 4.0
    retry_budget_cap: float = 32.0
    close_join_seconds: float = 30.0
    #: Causal forensics: ``flight_recorder`` attaches a
    #: :class:`~repro.observability.events.FlightRecorder` whose ring the
    #: runtime stamps with every lifecycle event (admission, pickup,
    #: chaos, crash, requeue, commit, expiry).  ``forensics_dir`` makes
    #: anomaly triggers (worker crash, invariant violation, SLO breach)
    #: dump JSON bundles there — and, when set without an explicit
    #: recorder, implies a default-capacity one.
    #: ``forensics_last_events`` is the ring slice each bundle captures.
    flight_recorder: Optional[FlightRecorder] = None
    forensics_dir: Optional[str] = None
    forensics_last_events: int = 256

    def __post_init__(self) -> None:
        if self.worker_threads is not None:
            warnings.warn(
                "RuntimeConfig(worker_threads=...) is deprecated; use "
                "RuntimeConfig(workers=..., backend='thread')",
                DeprecationWarning,
                stacklevel=3,  # through the dataclass __init__ to the caller
            )
            object.__setattr__(self, "workers", self.worker_threads)
        if self.backend not in BACKEND_CHOICES:
            raise ValueError(
                f"unknown execution backend {self.backend!r}; "
                f"valid choices: {', '.join(BACKEND_CHOICES)}"
            )
        if self.backend == "process":
            unsupported = [
                name for name, value in (
                    ("flight_recorder", self.flight_recorder),
                    ("forensics_dir", self.forensics_dir),
                )
                if value is not None
            ]
            if unsupported:
                raise UnsupportedBackendFeatureError(
                    f"the process backend cannot honour "
                    f"{', '.join(unsupported)}: worker processes cannot "
                    f"share the parent's event ring; use backend='thread' "
                    f"or drop the feature"
                )
        if self.workers < 1:
            raise MiddlewareRuntimeError("runtime needs at least one worker")
        if self.queue_depth < 1:
            raise MiddlewareRuntimeError("queue depth must be >= 1")
        if self.admission not in ("static", "adaptive"):
            raise MiddlewareRuntimeError(
                f"unknown admission policy {self.admission!r}; "
                "expected 'static' or 'adaptive'"
            )
        if self.admission_target_delay_ms <= 0:
            raise MiddlewareRuntimeError(
                "admission target delay must be positive"
            )
        if self.admission_window_seconds <= 0:
            raise MiddlewareRuntimeError(
                "admission measurement window must be positive"
            )
        if not 1 <= self.admission_min_depth <= self.queue_depth:
            raise MiddlewareRuntimeError(
                "admission_min_depth must satisfy "
                "1 <= min_depth <= queue_depth"
            )
        if self.max_requeues < 0:
            raise MiddlewareRuntimeError("max_requeues must be >= 0")
        if not 0.0 <= self.retry_budget_ratio <= 1.0:
            raise MiddlewareRuntimeError(
                "retry_budget_ratio must be in [0, 1]"
            )
        if self.retry_budget_initial < 0 or self.retry_budget_cap < 0:
            raise MiddlewareRuntimeError(
                "retry budget initial/cap must be >= 0"
            )
        if self.retry_budget_cap < self.retry_budget_initial:
            raise MiddlewareRuntimeError(
                "retry_budget_cap must be >= retry_budget_initial"
            )
        if self.close_join_seconds <= 0:
            raise MiddlewareRuntimeError(
                "close_join_seconds must be positive"
            )
        if self.forensics_last_events < 1:
            raise MiddlewareRuntimeError(
                "forensics_last_events must be >= 1"
            )


class MiddlewareRuntime:
    """A bounded worker pool brokering requests for one QASOM instance.

    Usable as a context manager::

        with MiddlewareRuntime(middleware, RuntimeConfig(workers=8)) as rt:
            handles = [rt.submit(r) for r in requests]
            results = [h.result() for h in handles]
    """

    def __init__(
        self,
        middleware: QASOM,
        config: Optional[RuntimeConfig] = None,
        *,
        autostart: bool = True,
        chaos: Optional[ChaosPolicy] = None,
    ) -> None:
        self.middleware = middleware
        self.config = config if config is not None else RuntimeConfig()
        self.autostart = autostart
        self.chaos = chaos
        if self.config.backend == "process":
            # Explicit and loud, never a silent no-op: these features need
            # parent-side shared mutable state a worker process can't see.
            if chaos is not None:
                raise UnsupportedBackendFeatureError(
                    "chaos injection is not supported on the process "
                    "backend: injection points live in the parent while "
                    "composition runs in worker processes; use "
                    "backend='thread'"
                )
            if middleware.estimator is not None:
                raise UnsupportedBackendFeatureError(
                    "cross-layer estimation is not supported on the "
                    "process backend: estimated QoS depends on live "
                    "device/link state worker processes cannot observe; "
                    "use backend='thread'"
                )
        self.observability = middleware.observability
        self.snapshots = SnapshotManager(middleware.environment.registry)
        self.batcher = DiscoveryBatcher(
            ontology=middleware.discovery.ontology,
            match_cache=middleware.discovery.match_cache,
            observability=self.observability,
        )
        self.coalescer = RequestCoalescer(observability=self.observability)
        self._clock = middleware.environment.clock

        # Causal forensics: the flight recorder stamps lifecycle events on
        # the shared sim clock; a forensics directory without an explicit
        # recorder implies a default-capacity one.  The reporter is built
        # whenever a recorder is live (bundles stay in memory when no
        # directory is configured), and the chaos policy feeds injections
        # into the same ring.
        recorder = self.config.flight_recorder
        if recorder is None and self.config.forensics_dir is not None:
            recorder = FlightRecorder()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.forensics: Optional[ForensicReporter] = None
        if self.recorder.enabled:
            self.recorder.attach_clock(self._clock)
            self.forensics = ForensicReporter(
                self.recorder,
                observability=self.observability,
                directory=self.config.forensics_dir,
                last_events=self.config.forensics_last_events,
                chaos_report=chaos.report if chaos is not None else None,
            )
            if chaos is not None:
                chaos.attach_recorder(self.recorder)

        self.admission = build_admission_controller(
            self.config, self.observability, recorder=self.recorder
        )
        self.supervisor = WorkerSupervisor(self)
        self.retry_budget = RetryBudget(
            ratio=self.config.retry_budget_ratio,
            initial=self.config.retry_budget_initial,
            cap=self.config.retry_budget_cap,
            observability=self.observability,
        )

        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._queue: Deque[RunHandle] = deque()
        # Worker slot -> thread; the supervisor replaces a slot in place
        # when it respawns a dead worker.
        self._threads: List[Optional[threading.Thread]] = []
        self._started = False
        self._closed = False
        self._in_flight = 0
        self._idle = threading.Condition(self._lock)

        # Ordered commit: executing submissions take a ticket at admission
        # and executions happen strictly in ticket order.  Keys are the
        # handle's monotonic ``seq`` — never ``id()``, which the allocator
        # reuses after GC and which would cross-wire tickets.
        self._commit_cond = threading.Condition()
        self._next_ticket = 0
        self._next_commit = 0
        self._abandoned: set = set()
        self._tickets: Dict[int, int] = {}  # handle.seq -> ticket
        self._commit_log: List[tuple] = []  # (ticket, handle.seq)
        self._requeues = 0

        # One private selector per worker thread: QASSA is deterministic,
        # so private selectors (and private selection caches) yield the
        # same plans as the serial selector without any cross-thread races.
        self._thread_state = threading.local()

        # Where composition executes: the worker threads themselves
        # (ThreadBackend) or a pool of worker processes the threads
        # dispatch to (ProcessBackend).  Built last — backends may read
        # any of the runtime state above.
        self.backend = build_backend(self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "MiddlewareRuntime":
        """Spin up the supervised worker pool (idempotent)."""
        with self._lock:
            if self._closed:
                raise RuntimeShutdownError("runtime already closed")
            if self._started:
                return self
            self._started = True
        # Backend first: worker threads may dispatch to it immediately.
        self.backend.start()
        for index in range(self.config.workers):
            self.supervisor.spawn(index)
        return self

    def close(self, drain: Optional[bool] = None) -> None:
        """Stop the pool.  ``drain`` overrides ``config.drain_on_close``.

        Workers that fail to exit within ``config.close_join_seconds``
        each are counted on ``runtime_threads_leaked_total``; when
        draining, leaked workers additionally raise
        :class:`~repro.errors.MiddlewareRuntimeError` — a drained close
        promises all work finished, which a wedged worker belies.
        """
        drain = self.config.drain_on_close if drain is None else drain
        cancelled: List[RunHandle] = []
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if not drain:
                cancelled = list(self._queue)
                self._queue.clear()
            # Snapshot under the same lock the supervisor registers new
            # threads under: every spawned thread is either in this list
            # or was refused (post-close), so none can escape the join.
            threads = [t for t in self._threads if t is not None]
            self._work.notify_all()
        for handle in cancelled:
            self._abandon_ticket(handle)
            handle.finished_sim = self._clock.now()
            handle._fail(
                RuntimeShutdownError("runtime shut down before the request "
                                     "was processed"),
                RequestStatus.CANCELLED,
            )
            self._counter("runtime_cancelled_total").inc()
            self._crash_bundle(handle)
        for thread in threads:
            thread.join(timeout=self.config.close_join_seconds)
        leaked = [t for t in threads if t.is_alive()]
        self._threads.clear()
        # Backend teardown after the dispatching threads are gone (they
        # hold backend channels while composing) — and before any leak
        # error, so worker processes never outlive a failed close.
        leaked_workers = self.backend.stop(self.config.close_join_seconds)
        if leaked_workers:
            self._counter("runtime_processes_leaked_total").inc(
                leaked_workers
            )
        if leaked:
            self._counter("runtime_threads_leaked_total").inc(len(leaked))
        if drain and (leaked or leaked_workers):
            parts = []
            if leaked:
                names = ", ".join(t.name for t in leaked)
                parts.append(
                    f"{len(leaked)} worker thread(s) still alive "
                    f"{self.config.close_join_seconds:g}s after a draining "
                    f"close: {names}"
                )
            if leaked_workers:
                parts.append(
                    f"{leaked_workers} worker process(es) survived "
                    f"termination"
                )
            raise MiddlewareRuntimeError("; ".join(parts))

    def __enter__(self) -> "MiddlewareRuntime":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # submission surface (mirrors QASOM.submit)
    # ------------------------------------------------------------------
    def submit(
        self,
        request: Optional[UserRequest] = None,
        *,
        plan: Optional[CompositionPlan] = None,
        execute: bool = True,
        adapt: bool = True,
        ranked: int = 0,
        best_effort: bool = False,
        track_sla: bool = False,
    ) -> RunHandle:
        """Admit one request; returns immediately with a :class:`RunHandle`.

        Raises nothing on overload: a rejected submission comes back as a
        handle in ``REJECTED`` state whose accessors raise
        :class:`~repro.errors.AdmissionRejectedError` — callers that fan
        out many submissions inspect failures per handle.
        """
        spec = RunSpec(
            request=request, plan=plan, execute=execute, adapt=adapt,
            ranked=ranked, best_effort=best_effort, track_sla=track_sla,
        )
        handle = RunHandle(spec)
        handle.submitted_sim = self._clock.now()
        if self.observability.enabled or self.recorder.enabled:
            # The request's causal identity, minted exactly once; every
            # span and flight-recorder event it produces carries this id.
            handle.trace_context = TraceContext.mint()
        self._counter("runtime_submitted_total").inc()
        self.admission.on_arrival(handle.submitted_sim)
        with self._lock:
            if self._closed:
                raise RuntimeShutdownError("runtime is closed")
            if not self.admission.admit(len(self._queue)):
                handle.finished_sim = handle.submitted_sim
                handle._fail(
                    AdmissionRejectedError(
                        f"admission queue full "
                        f"({self.admission.effective_depth()} pending)"
                    ),
                    RequestStatus.REJECTED,
                )
                self._counter("runtime_rejected_total").inc()
                if self.recorder.enabled:
                    self.recorder.record(
                        rt_events.ADMISSION_REJECT,
                        trace_id=handle.trace_id,
                        seq=handle.seq,
                        depth=self.admission.effective_depth(),
                    )
                return handle
            if spec.execute:
                with self._commit_cond:
                    self._tickets[handle.seq] = self._next_ticket
                    self._next_ticket += 1
            self._queue.append(handle)
            self._gauge("runtime_queue_depth").set(len(self._queue))
            if self.recorder.enabled:
                self.recorder.record(
                    rt_events.ADMISSION_ACCEPT,
                    trace_id=handle.trace_id,
                    seq=handle.seq,
                    queued=len(self._queue),
                )
            self._work.notify()
        self.retry_budget.on_admit()
        if self.autostart and not self._started:
            self.start()
        return handle

    def run(self, request: UserRequest, **options) -> RunResult:
        """Submit and block for the full result (stable-API convenience)."""
        return self.submit(request, **options).result()

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until the queue is empty and no request is in flight."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._idle:
            while self._queue or self._in_flight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        raise MiddlewareRuntimeError(
                            "runtime did not drain within the timeout"
                        )
                self._idle.wait(remaining)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet picked up."""
        with self._lock:
            return len(self._queue)

    @property
    def in_flight(self) -> int:
        """Requests currently on a worker."""
        with self._lock:
            return self._in_flight

    @property
    def running(self) -> bool:
        """Started and not yet closed."""
        with self._lock:
            return self._started and not self._closed

    @property
    def alive_workers(self) -> int:
        """Worker threads currently alive (the supervised pool size)."""
        with self._lock:
            return sum(
                1 for t in self._threads if t is not None and t.is_alive()
            )

    @property
    def commit_log(self) -> tuple:
        """``(ticket, handle.seq)`` pairs in the order commits happened.

        The invariant checker's raw material: strictly increasing tickets
        with unique seqs mean no commit was duplicated or reordered, even
        across crash-requeue cycles.
        """
        with self._commit_cond:
            return tuple(self._commit_log)

    @property
    def requeued(self) -> int:
        """Crash/fault-orphaned requests successfully re-admitted."""
        with self._lock:
            return self._requeues

    @property
    def open_tickets(self) -> int:
        """Commit tickets not yet released (in-flight executing requests)."""
        with self._commit_cond:
            return len(self._tickets)

    # ------------------------------------------------------------------
    # worker machinery
    # ------------------------------------------------------------------
    def _worker_loop(self, worker: int = 0) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._work.wait()
                if not self._queue:
                    return  # closed and drained (or cancelled)
                handle = self._queue.popleft()
                self._gauge("runtime_queue_depth").set(len(self._queue))
                self._in_flight += 1
                self._gauge("runtime_in_flight").set(self._in_flight)
            if self.recorder.enabled:
                self.recorder.record(
                    rt_events.WORKER_PICKUP,
                    trace_id=handle.trace_id,
                    seq=handle.seq,
                    worker=worker,
                    attempt=handle.requeues,
                )
            try:
                try:
                    if self.chaos is not None:
                        self.chaos.on_worker_pickup(worker)
                    self._process(handle)
                    if not handle.done():
                        # _process returned without a terminal state — a
                        # bug, but never one the caller should block on.
                        self._requeue_or_fail(
                            handle,
                            MiddlewareRuntimeError(
                                "request processing finished without a "
                                "terminal state"
                            ),
                        )
                except (InjectedSnapshotFailure, WorkerProcessCrash) as exc:
                    # Transient runtime fault (injected, or a worker
                    # process death the backend already absorbed by
                    # respawning): the dispatching thread survives, the
                    # request goes back to the queue (budget permitting).
                    self._requeue_or_fail(handle, exc)
                except BaseException as exc:
                    # This worker is about to die (injected crash, or a
                    # bug that escaped _process).  Salvage its request
                    # *before* the in-flight count drops so drain() can
                    # never observe the orphan as finished work, then let
                    # the supervisor see the death.
                    handle.crashes += 1
                    if self.recorder.enabled:
                        self.recorder.record(
                            rt_events.WORKER_CRASH,
                            trace_id=handle.trace_id,
                            seq=handle.seq,
                            worker=worker,
                            error=type(exc).__name__,
                        )
                    self._requeue_or_fail(handle, exc)
                    raise
            finally:
                if handle.done() and handle.finished_sim is None:
                    handle.finished_sim = self._clock.now()
                # Deferred crash bundle: by now the attempt's spans have
                # closed (the ``with`` blocks unwound inside _process), so
                # the bundle captures the victim's complete span tree.
                self._crash_bundle(handle)
                with self._lock:
                    self._in_flight -= 1
                    self._gauge("runtime_in_flight").set(self._in_flight)
                    self._idle.notify_all()

    def _requeue_or_fail(
        self, handle: RunHandle, error: BaseException
    ) -> None:
        """Salvage an orphaned request: re-admit it, or fail it fast.

        Requeueing keeps the *original* admission ticket, so a crashed
        request still commits in its original order (pooled==serial
        byte-identity survives crashes).  It is refused — failing the
        handle instead — when the runtime is closing, the bounded requeue
        count is spent, the :class:`RetryBudget` is empty (the
        metastability guard), or the ticket was already consumed (the
        crash landed mid-commit, where re-execution could duplicate
        environment side effects).
        """
        if handle.done():
            return
        with self._lock:
            closed = self._closed
        with self._commit_cond:
            ticket_live = (
                not handle.spec.execute or handle.seq in self._tickets
            )
        retryable = (
            not closed
            and ticket_live
            and handle.requeues < self.config.max_requeues
        )
        if retryable and self.retry_budget.try_acquire():
            handle.requeues += 1
            handle._mark_requeued()
            with self._lock:
                # Front of the queue: the request already holds the oldest
                # ticket, so the commit pipeline unblocks fastest this way.
                self._queue.appendleft(handle)
                self._gauge("runtime_queue_depth").set(len(self._queue))
                self._work.notify()
                self._requeues += 1
            self._counter("runtime_requeued_total").inc()
            if self.recorder.enabled:
                self.recorder.record(
                    rt_events.REQUEST_REQUEUED,
                    trace_id=handle.trace_id,
                    seq=handle.seq,
                    attempt=handle.requeues,
                    error=type(error).__name__,
                )
            return
        if retryable and self.recorder.enabled:
            # The retryable conditions held, so the budget was consulted
            # and said no — the metastability guard refusing a requeue.
            self.recorder.record(
                rt_events.RETRY_DENIED,
                trace_id=handle.trace_id,
                seq=handle.seq,
                tokens=self.retry_budget.tokens,
            )
        self._abandon_ticket(handle)
        if not isinstance(error, Exception):
            error = WorkerCrashError(
                f"worker crashed while processing this request and it "
                f"could not be requeued: {error}"
            )
        handle.finished_sim = self._clock.now()
        handle._fail(error, RequestStatus.FAILED)
        self._counter("runtime_failed_total").inc()
        if self.recorder.enabled:
            self.recorder.record(
                rt_events.REQUEST_FAILED,
                trace_id=handle.trace_id,
                seq=handle.seq,
                error=type(error).__name__,
            )

    def _process(self, handle: RunHandle) -> None:
        """Adopt the request's trace context, then run the pipeline.

        Adoption happens here — *after* the chaos pickup point — so a
        crash-at-pickup attempt contributes no spans to the request's
        trace; the surviving attempt's ``runtime.request`` span is the
        tree's sole root.
        """
        context = handle.trace_context
        if context is None:
            self._process_adopted(handle)
            return
        with self.observability.adopt(context):
            self._process_adopted(handle)

    def _process_adopted(self, handle: RunHandle) -> None:
        spec = handle.spec
        handle._mark_running()
        if self._expired(handle):
            self._expire(handle, "queued")
            return
        task_name = (
            spec.request.task.name if spec.request is not None
            else spec.plan.task.name
        )
        with self.observability.span(
            "runtime.request", task=task_name, execute=spec.execute,
            attempt=handle.requeues,
        ) as span:
            span.set(queue_ms=round((handle.queue_seconds or 0.0) * 1e3, 3))
            context = handle.trace_context
            span_id = getattr(span, "span_id", None)
            if (
                context is not None
                and span_id is not None
                and context.parent_span_id is None
            ):
                # First attempt: later causal work — the commit stage, a
                # crash-requeued retry on another worker — links under
                # this root span instead of opening a second root.
                handle.trace_context = context.child(span_id)
            try:
                if spec.plan is not None:
                    plans = [spec.plan]
                else:
                    plans = self._compose(spec)
                if not spec.execute:
                    handle._complete(plans=plans)
                    self._counter("runtime_completed_total").inc()
                    span.set(status="done")
                    self._record_done(handle)
                    return
                if self._expired(handle):
                    self._expire(handle, "pre-commit")
                    span.set(status="expired")
                    return
                result = self._commit(handle, plans[0])
                if result is None:  # expired while awaiting its turn
                    span.set(status="expired")
                    return
                handle._complete(result)
                self._counter("runtime_completed_total").inc()
                span.set(status="done")
                self._record_done(handle)
            except (InjectedSnapshotFailure, WorkerProcessCrash):
                # Transient fault (injected chaos, or a worker process
                # crash) — keep the ticket; the worker loop requeues the
                # request under the retry budget.
                span.set(status="requeued")
                raise
            except Exception as exc:  # noqa: BLE001 - failure lands on handle
                self._abandon_ticket(handle)
                handle._fail(exc, RequestStatus.FAILED)
                self._counter("runtime_failed_total").inc()
                span.set(status="failed")
                if self.recorder.enabled:
                    self.recorder.record(
                        rt_events.REQUEST_FAILED,
                        trace_id=handle.trace_id,
                        seq=handle.seq,
                        error=type(exc).__name__,
                    )

    def _compose(self, spec: RunSpec) -> List[CompositionPlan]:
        """Concurrent composition: snapshot + batched discovery + private
        selector, with whole-result coalescing across identical requests.
        Pools and plans are identical to the serial path."""
        if self.chaos is not None:
            self.chaos.on_snapshot_acquire()
        snapshot = self.snapshots.acquire()
        key = self._plan_key(spec, snapshot.generation)
        if key is None:
            return self.backend.compose(spec, snapshot)
        return self.coalescer.plans(
            key, lambda: self.backend.compose(spec, snapshot)
        )

    def _plan_key(self, spec: RunSpec, generation: int):
        """The coalescing key for a request, or ``None`` when uncacheable.

        Composition is a pure function of the snapshot generation plus the
        request content and selection options — *except* when the
        cross-layer estimator is on (candidate QoS then depends on live
        device/link state the generation does not cover), so those
        requests always compose fresh.
        """
        if spec.request is None or self.middleware.estimator is not None:
            return None
        request = spec.request
        return (
            generation,
            id(request.task),
            tuple(request.constraints),
            tuple(sorted(request.weights.items())),
            spec.ranked,
            spec.best_effort,
        )

    def _compose_against(
        self, spec: RunSpec, snapshot
    ) -> List[CompositionPlan]:
        middleware = self.middleware
        request = spec.request
        pools: Dict[str, List] = {}
        with self.observability.span(
            "compose", task=request.task.name,
            activities=request.task.size(), generation=snapshot.generation,
        ) as span:
            for activity in request.task.activities:
                services = self.batcher.candidates(
                    snapshot,
                    activity.capability,
                    middleware.config.discovery_minimum_degree,
                )
                if middleware.estimator is not None:
                    services = [
                        middleware.estimator.estimated_service(s)
                        for s in services
                    ]
                if not services:
                    raise NoCandidateError(activity.name)
                pools[activity.name] = services
            candidates = CandidateSets(request.task, pools)
            selector = self._selector()
            if spec.ranked:
                plans = selector.select_ranked(
                    request, candidates, k=spec.ranked
                )
            else:
                plans = [
                    selector.select(
                        request, candidates, best_effort=spec.best_effort
                    )
                ]
            span.set(utility=plans[0].utility, feasible=plans[0].feasible)
        return plans

    def _commit(
        self, handle: RunHandle, plan: CompositionPlan
    ) -> Optional[RunResult]:
        """Execute in strict admission order against the live environment."""
        wait_started = time.perf_counter()
        with self._commit_cond:
            ticket = self._tickets[handle.seq]
            while self._next_commit != ticket:
                self._commit_cond.wait()
            # Our turn: consume the ticket and log the commit.  From here
            # on a crash can no longer requeue this request (re-execution
            # would duplicate environment side effects).
            del self._tickets[handle.seq]
            self._commit_log.append((ticket, handle.seq))
        commit_wait_ms = (time.perf_counter() - wait_started) * 1e3
        try:
            if self.chaos is not None:
                self.chaos.on_commit(ticket)
            if self._expired(handle):
                self._expire(handle, "commit")
                return None
            service_started = self._clock.now()
            with self.observability.span(
                "runtime.commit", ticket=ticket,
                commit_wait_ms=round(commit_wait_ms, 3),
            ):
                result = self.middleware._execute_plan(
                    plan, adapt=handle.spec.adapt,
                    track_sla=handle.spec.track_sla,
                )
            service_ended = self._clock.now()
            if self.recorder.enabled:
                self.recorder.record(
                    rt_events.COMMIT,
                    trace_id=handle.trace_id,
                    seq=handle.seq,
                    ticket=ticket,
                    service_seconds=service_ended - service_started,
                )
            self.admission.on_complete(
                service_ended - service_started, service_ended
            )
            return result
        finally:
            with self._commit_cond:
                self._advance_commit_locked()

    # ------------------------------------------------------------------
    def _selector(self) -> QASSA:
        """This worker thread's private selector (built on first use)."""
        selector = getattr(self._thread_state, "selector", None)
        if selector is None:
            middleware = self.middleware
            selector = QASSA(
                middleware.properties,
                middleware.config.aggregation,
                middleware.config.qassa,
                observability=self.observability,
                cache=(
                    SelectionCache()
                    if middleware.config.incremental_selection else None
                ),
            )
            self._thread_state.selector = selector
        return selector

    def _expired(self, handle: RunHandle) -> bool:
        elapsed_ms = (time.perf_counter() - handle.submitted_wall) * 1e3
        return self.config.deadline.expired(elapsed_ms)

    def _expire(self, handle: RunHandle, stage: str) -> None:
        self._abandon_ticket(handle)
        handle._fail(
            DeadlineExceededError(
                f"deadline of {self.config.deadline.invoke_timeout_ms:g} ms "
                f"elapsed ({stage})"
            ),
            RequestStatus.EXPIRED,
        )
        self._counter("runtime_expired_total").inc()
        if self.recorder.enabled:
            self.recorder.record(
                rt_events.DEADLINE_EXPIRED,
                trace_id=handle.trace_id,
                seq=handle.seq,
                stage=stage,
            )

    def _record_done(self, handle: RunHandle) -> None:
        """Stamp a request's successful completion on the event ring."""
        if self.recorder.enabled:
            self.recorder.record(
                rt_events.REQUEST_DONE,
                trace_id=handle.trace_id,
                seq=handle.seq,
                requeues=handle.requeues,
            )

    def _crash_bundle(self, handle: RunHandle) -> None:
        """Dump the deferred ``worker_crash`` bundle for a crash survivor.

        Triggered when a crash-victim request reaches a terminal state —
        not at crash time, and only after its spans have closed — so the
        bundle tells the whole story: admission → pickup → crash →
        requeue → (pickup →) commit or failure, plus the request's
        complete single-rooted span tree.  At most one bundle per request.
        """
        if handle.crashes == 0 or self.forensics is None:
            return
        if not handle.done():
            return  # still requeued; bundle at the terminal state instead
        if getattr(handle, "_crash_bundled", False):
            return
        handle._crash_bundled = True
        self.forensics.trigger(
            "worker_crash",
            trace_id=handle.trace_id,
            seq=handle.seq,
            crashes=handle.crashes,
            requeues=handle.requeues,
            status=handle.status.value,
        )

    def _abandon_ticket(self, handle: RunHandle) -> None:
        """Release a commit ticket without executing (failure/expiry)."""
        with self._commit_cond:
            ticket = self._tickets.pop(handle.seq, None)
            if ticket is None:
                return
            if self._next_commit == ticket:
                self._advance_commit_locked()
            else:
                self._abandoned.add(ticket)

    def _advance_commit_locked(self) -> None:
        self._next_commit += 1
        while self._next_commit in self._abandoned:
            self._abandoned.discard(self._next_commit)
            self._next_commit += 1
        self._commit_cond.notify_all()

    # ------------------------------------------------------------------
    def _counter(self, name: str):
        return self.observability.counter(name)

    def _gauge(self, name: str):
        return self.observability.gauge(name)
