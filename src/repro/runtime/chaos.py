"""Deterministic chaos injection for the concurrent runtime.

PR 3 gave the *service* layer a fault model: seeded
:class:`~repro.resilience.faults.FaultSchedule`\\ s the environment replays
deterministically.  This module extends the same discipline to the
*platform* layer — the worker pool, snapshot manager and commit stage the
runtime itself is built from — so "a worker thread dies mid-request" is as
reproducible as "service X vanishes at t=3.2".

A :class:`ChaosPolicy` consumes the runtime-kind subset of a fault
schedule (``worker_crash`` / ``worker_stall`` / ``snapshot_failure`` /
``commit_delay``) and is consulted by :class:`~repro.runtime.runtime.MiddlewareRuntime`
at four well-defined injection points:

* **worker pickup** — right after a worker dequeues a request: a due
  ``worker_stall`` freezes the worker for the event's ``duration`` (wall
  seconds, capped), a due ``worker_crash`` raises
  :class:`InjectedWorkerCrash` — a ``BaseException`` no pipeline handler
  swallows, so the thread genuinely dies and the supervisor takes over;
* **snapshot acquire** — before composition takes its registry snapshot: a
  due ``snapshot_failure`` raises :class:`InjectedSnapshotFailure`, a
  *transient* fault the runtime requeues under the retry budget;
* **commit** — after a request wins its commit ticket: a due
  ``commit_delay`` stalls the commit stage while holding its turn.

Events fire **at most once**, in schedule order per kind, when the first
matching injection point observes simulated time ``>= at`` — so a chaos
run is a pure function of (schedule, workload, seed) and replaying the
same JSON schedule yields the same injected faults.

The module also hosts the runtime's **invariant checker**
(:func:`verify_runtime_invariants` / :func:`assert_runtime_invariants`):
after any run — chaotic or not — no request may be lost, no commit
duplicated, ticket order must be preserved, and the worker pool must be
back at its configured size.  ``benchmarks/bench_chaos.py`` gates on it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import MiddlewareRuntimeError, RuntimeInvariantError
from repro.observability import NULL_OBSERVABILITY
from repro.observability.events import CHAOS_INJECTED, INVARIANT_VIOLATION, NULL_RECORDER
from repro.resilience.faults import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    RUNTIME_KINDS,
)


class InjectedWorkerCrash(BaseException):
    """A chaos-injected worker death.

    Deliberately derives from ``BaseException`` (not ``Exception``) so no
    ``except Exception`` handler anywhere in the pipeline can swallow it:
    the worker thread it is raised on *will* die, exactly like a thread
    hit by an unrecoverable bug, and recovery is the supervisor's job.
    """


class InjectedSnapshotFailure(MiddlewareRuntimeError):
    """A chaos-injected transient failure acquiring a registry snapshot.

    Transient by contract: the runtime requeues the affected request under
    its original admission ticket (budget permitting) instead of failing
    it, modelling a registry replica that answers on the next try.
    """


@dataclass(frozen=True)
class FiredFault:
    """One chaos event that has been injected.

    ``sim_at`` is the simulated-clock reading at the injection point that
    consumed the event (>= the event's scheduled ``at``); ``worker`` is
    the worker index for worker-kind events, ``None`` otherwise.
    """

    event: FaultEvent
    sim_at: float
    worker: Optional[int] = None

    def signature(self) -> Tuple[str, float, str]:
        """Replay-stable identity: (kind, scheduled at, target).

        Excludes ``sim_at``/``worker``, which depend on thread timing.
        """
        return (self.event.kind.value, self.event.at, self.event.target)


class ChaosPolicy:
    """Replayable runtime fault injection driven by a fault schedule.

    Thread-safe: every injection point may be reached from any worker
    concurrently; events are consumed under one lock, in schedule order
    per kind.  ``max_sleep_seconds`` caps stall/commit-delay sleeps so a
    typo in a schedule cannot hang a benchmark.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        clock: Any,
        *,
        observability: Any = NULL_OBSERVABILITY,
        max_sleep_seconds: float = 5.0,
    ) -> None:
        if max_sleep_seconds <= 0:
            raise MiddlewareRuntimeError(
                "chaos max_sleep_seconds must be positive"
            )
        self.clock = clock
        self.observability = observability
        self.recorder: Any = NULL_RECORDER
        self.max_sleep_seconds = float(max_sleep_seconds)
        self._lock = threading.Lock()
        self._pending: Dict[FaultKind, List[FaultEvent]] = {
            kind: [] for kind in RUNTIME_KINDS
        }
        for event in schedule:
            if event.kind in RUNTIME_KINDS:
                self._pending[event.kind].append(event)
        self._fired: List[FiredFault] = []

    @classmethod
    def from_schedule(
        cls, schedule: FaultSchedule, clock: Any, **kwargs: Any
    ) -> Optional["ChaosPolicy"]:
        """A policy for the schedule's runtime events — ``None`` if none."""
        runtime = schedule.runtime_events()
        if not runtime:
            return None
        return cls(runtime, clock, **kwargs)

    def attach_recorder(self, recorder: Any) -> None:
        """Stamp every future injection on a flight-recorder ring.

        The runtime calls this when it owns a live recorder, so injected
        faults interleave with the admission/pickup/commit events they
        perturb in one globally sequenced log.
        """
        self.recorder = recorder

    # -- injection points ------------------------------------------------
    def on_worker_pickup(self, worker: int) -> None:
        """Consulted by a worker right after it dequeues a request.

        May sleep (``worker_stall``) and may raise
        :class:`InjectedWorkerCrash` (``worker_crash``).
        """
        stall = self._take(FaultKind.WORKER_STALL, worker=worker)
        if stall is not None:
            self._count(stall)
            time.sleep(min(stall.duration, self.max_sleep_seconds))
        crash = self._take(FaultKind.WORKER_CRASH, worker=worker)
        if crash is not None:
            self._count(crash)
            raise InjectedWorkerCrash(
                f"chaos: worker {worker} crashed "
                f"(scheduled at t={crash.at:g})"
            )

    def on_snapshot_acquire(self) -> None:
        """Consulted before composition acquires its registry snapshot."""
        event = self._take(FaultKind.SNAPSHOT_FAILURE)
        if event is not None:
            self._count(event)
            raise InjectedSnapshotFailure(
                f"chaos: snapshot refresh failed (scheduled at "
                f"t={event.at:g})"
            )

    def on_commit(self, ticket: int) -> None:
        """Consulted after a request wins its commit ticket."""
        event = self._take(FaultKind.COMMIT_DELAY)
        if event is not None:
            self._count(event)
            time.sleep(min(event.duration, self.max_sleep_seconds))

    # -- introspection ---------------------------------------------------
    @property
    def fired(self) -> Tuple[FiredFault, ...]:
        """Events injected so far, in injection order."""
        with self._lock:
            return tuple(self._fired)

    @property
    def pending(self) -> Tuple[FaultEvent, ...]:
        """Events not yet injected, ordered by scheduled time."""
        with self._lock:
            remaining = [e for events in self._pending.values()
                         for e in events]
        return tuple(sorted(remaining, key=lambda e: e.at))

    def report(self) -> Dict[str, Any]:
        """A replay-stable summary: fired signatures + pending count."""
        with self._lock:
            fired = list(self._fired)
            pending = sum(len(v) for v in self._pending.values())
        return {
            "fired": sorted(f.signature() for f in fired),
            "pending": pending,
        }

    # -- internals -------------------------------------------------------
    def _take(
        self, kind: FaultKind, worker: Optional[int] = None
    ) -> Optional[FaultEvent]:
        with self._lock:
            now = self.clock.now()
            events = self._pending[kind]
            for index, event in enumerate(events):
                if event.at > now:
                    continue
                if not self._matches(event, worker):
                    continue
                del events[index]
                self._fired.append(FiredFault(event, now, worker))
                return event
        return None

    @staticmethod
    def _matches(event: FaultEvent, worker: Optional[int]) -> bool:
        if worker is None or event.target in ("any", "*"):
            return True
        return event.target == f"worker-{worker}"

    def _count(self, event: FaultEvent) -> None:
        self.observability.counter(
            "runtime_chaos_injected_total", kind=event.kind.value
        ).inc()
        if self.recorder.enabled:
            self.recorder.record(
                CHAOS_INJECTED,
                fault=event.kind.value,
                target=event.target,
                scheduled_at=event.at,
            )
        with self.observability.span(
            "runtime.chaos", kind=event.kind.value, target=event.target,
            scheduled_at=event.at,
        ):
            pass

    def __repr__(self) -> str:
        with self._lock:
            pending = sum(len(v) for v in self._pending.values())
            fired = len(self._fired)
        return f"ChaosPolicy(fired={fired}, pending={pending})"


# ----------------------------------------------------------------------
# invariant checking
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InvariantReport:
    """The outcome of one runtime invariant sweep.

    ``violations`` is empty when every invariant held.  The counts give
    the checker's evidence base: how many handles were inspected, how many
    commits the runtime logged, how many requeues/restarts the fault
    machinery performed, and how many workers are alive.
    """

    handles: int
    committed: int
    requeued: int
    restarts: int
    alive_workers: int
    expected_workers: int
    violations: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        """Whether every invariant held."""
        return not self.violations


def verify_runtime_invariants(
    runtime: Any, handles: Sequence[Any]
) -> InvariantReport:
    """Check the runtime's safety invariants after a (chaotic) run.

    1. **No request lost** — every submitted handle reached a terminal
       state; ``result()`` can never block forever.
    2. **No commit duplicated** — no admission ticket, and no handle,
       committed more than once (a requeued request re-executes at most
       once).
    3. **Ticket order preserved** — the commit log is strictly increasing
       in ticket order, so pooled==serial byte-identity survives crashes.
    4. **No ticket leaked** — every terminal handle released its ticket.
    5. **Pool restored** — the supervisor brought the worker pool back to
       ``config.workers`` threads (checked on a running runtime only).
    """
    violations: List[str] = []
    lost = [h for h in handles if not h.done()]
    if lost:
        violations.append(
            f"{len(lost)} request(s) lost (non-terminal handles): "
            f"{[repr(h) for h in lost[:5]]}"
        )
    log = runtime.commit_log
    tickets = [ticket for ticket, _ in log]
    seqs = [seq for _, seq in log]
    if len(set(tickets)) != len(tickets):
        violations.append(f"duplicate ticket committed: {tickets}")
    if len(set(seqs)) != len(seqs):
        violations.append(f"request committed more than once: {seqs}")
    if tickets != sorted(tickets):
        violations.append(f"commits out of ticket order: {tickets}")
    if runtime.open_tickets:
        violations.append(
            f"{runtime.open_tickets} commit ticket(s) leaked by terminal "
            "requests"
        )
    expected = runtime.config.workers
    alive = runtime.alive_workers
    running = runtime.running
    if running and alive != expected:
        # Supervision is asynchronous: a crash on the last in-flight
        # request can land this check in the gap between the worker's
        # death and the supervisor's respawn.  Restoration only has to
        # *happen*, not to have happened already, so poll briefly before
        # calling the pool unrestored.
        deadline = time.monotonic() + 2.0
        while alive != expected and time.monotonic() < deadline:
            time.sleep(0.01)
            alive = runtime.alive_workers
    if running and alive != expected:
        violations.append(
            f"worker pool not restored: {alive} alive of {expected}"
        )
    restarts = runtime.supervisor.restarts
    requeued = sum(getattr(h, "requeues", 0) for h in handles)
    return InvariantReport(
        handles=len(handles),
        committed=len(log),
        requeued=requeued,
        restarts=restarts,
        alive_workers=alive,
        expected_workers=expected,
        violations=tuple(violations),
    )


def assert_runtime_invariants(
    runtime: Any, handles: Sequence[Any]
) -> InvariantReport:
    """:func:`verify_runtime_invariants`, raising on any violation.

    Before raising, the violation is treated as an anomaly trigger: it is
    stamped on the runtime's flight recorder and — when the runtime has a
    :class:`~repro.observability.forensics.ForensicReporter` — dumped as
    an ``invariant_violation`` forensic bundle, so the evidence survives
    the raised exception.
    """
    report = verify_runtime_invariants(runtime, handles)
    if not report.ok:
        recorder = getattr(runtime, "recorder", None)
        if recorder is not None and recorder.enabled:
            recorder.record(
                INVARIANT_VIOLATION, violations=list(report.violations)
            )
        forensics = getattr(runtime, "forensics", None)
        if forensics is not None:
            forensics.trigger(
                "invariant_violation",
                violations=list(report.violations),
                handles=report.handles,
                committed=report.committed,
            )
        raise RuntimeInvariantError(
            "runtime invariants violated: " + "; ".join(report.violations)
        )
    return report
