"""User requests: task + global QoS constraints + preference weights (§IV.2).

The user request ``R = (T, U, W)`` bundles:

* ``T`` — the required :class:`~repro.composition.task.Task`;
* ``U`` — global QoS constraints, bounds over the QoS of the *whole*
  composition (this is what makes selection NP-hard);
* ``W`` — preference weights over QoS properties, normalised to sum to 1,
  driving the SAW utility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.errors import QoSModelError, SelectionError
from repro.qos.properties import Direction, QoSProperty
from repro.qos.values import QoSVector
from repro.services.discovery import QoSConstraint
from repro.composition.task import Task


class GlobalConstraint(QoSConstraint):
    """A bound on the aggregated QoS of the whole composition.

    Same shape as a local constraint; kept as a distinct type so signatures
    document which scope they operate at (§IV.4.2 of the survey chapter).
    """

    @classmethod
    def at_most(cls, property_name: str, bound: float) -> "GlobalConstraint":
        return cls(property_name, "<=", bound)

    @classmethod
    def at_least(cls, property_name: str, bound: float) -> "GlobalConstraint":
        return cls(property_name, ">=", bound)

    @classmethod
    def natural(cls, prop: QoSProperty, bound: float) -> "GlobalConstraint":
        """A constraint in the property's natural direction: an upper bound
        for negative properties (response time), a lower bound for positive
        ones (availability)."""
        op = "<=" if prop.direction is Direction.NEGATIVE else ">="
        return cls(prop.name, op, bound)


def decompose_constraint(
    constraint: QoSConstraint, prop: QoSProperty, activity_count: int
) -> QoSConstraint:
    """Split a global constraint into an equal-share per-service bound.

    Additive budgets (response time, cost) divide evenly; multiplicative
    floors (availability, reliability) take the n-th root (each of n factors
    must reach ``bound^(1/n)`` for the product to reach the bound); min/max
    bounds apply to every member unchanged (a composition can never beat its
    worst member on those).  Used to derive monitoring watch bounds and
    per-service SLAs from a user's global requirements.
    """
    from repro.qos.properties import AggregationKind

    count = max(activity_count, 1)
    if prop.aggregation is AggregationKind.ADDITIVE:
        return QoSConstraint(
            constraint.property_name, constraint.operator,
            constraint.bound / count,
        )
    if prop.aggregation is AggregationKind.MULTIPLICATIVE and constraint.bound > 0:
        return QoSConstraint(
            constraint.property_name, constraint.operator,
            constraint.bound ** (1.0 / count),
        )
    return QoSConstraint(
        constraint.property_name, constraint.operator, constraint.bound
    )


@dataclass(frozen=True)
class UserRequest:
    """The full request the middleware receives from the user's device."""

    task: Task
    constraints: Tuple[GlobalConstraint, ...] = ()
    weights: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if any(w < 0 for w in self.weights.values()):
            raise QoSModelError("preference weights must be non-negative")
        object.__setattr__(self, "weights", dict(self.weights))

    @property
    def constrained_properties(self) -> Tuple[str, ...]:
        """Property names under a global constraint, in declaration order."""
        seen = []
        for c in self.constraints:
            if c.property_name not in seen:
                seen.append(c.property_name)
        return tuple(seen)

    @property
    def relevant_properties(self) -> Tuple[str, ...]:
        """Properties the request cares about: weighted or constrained."""
        names = list(self.constrained_properties)
        for name in self.weights:
            if name not in names:
                names.append(name)
        return tuple(names)

    def normalised_weights(self, properties: Iterable[str]) -> Dict[str, float]:
        """Weights over ``properties``, filled uniformly and scaled to sum 1.

        Properties the user did not weight receive the mean declared weight
        (or 1.0 when no weights were declared at all), so every relevant
        dimension contributes to utility.
        """
        names = list(properties)
        if not names:
            raise QoSModelError("cannot normalise weights over no properties")
        declared = [self.weights[n] for n in names if n in self.weights]
        default = (sum(declared) / len(declared)) if declared else 1.0
        raw = {n: self.weights.get(n, default) for n in names}
        total = sum(raw.values())
        if total <= 0:
            return {n: 1.0 / len(names) for n in names}
        return {n: v / total for n, v in raw.items()}

    def satisfied_by(self, aggregated: QoSVector) -> bool:
        """Whether an aggregated composition QoS meets every constraint."""
        for c in self.constraints:
            value = aggregated.get(c.property_name)
            if value is None or not c.satisfied_by(value):
                return False
        return True

    def violations(self, aggregated: QoSVector) -> Dict[str, float]:
        """Map of violated constraint -> (negative) slack, for diagnostics."""
        result: Dict[str, float] = {}
        for c in self.constraints:
            value = aggregated.get(c.property_name)
            if value is None:
                result[str(c)] = float("-inf")
            elif not c.satisfied_by(value):
                result[str(c)] = c.slack(value)
        return result
