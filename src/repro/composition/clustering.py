"""K-means clustering of service candidates into QoS levels (§IV.3.2).

QASSA's local selection phase clusters each activity's candidate services in
normalised QoS space.  Clusters are then ranked by the utility of their
centroid, yielding **QoS levels** ``QL_r`` (rank 0 = best).  Services inside
a level that share (quantised) QoS values form **QoS classes** ``QC_{r,e}``.

The implementation is a plain Lloyd's algorithm over dicts of normalised
values — no numpy dependency, deterministic under a seed, with k-means++
style seeding for robustness.  The computational complexity symbol the
paper calls Δ (Delta) corresponds to ``iterations × k × n × d``.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SelectionError

logger = logging.getLogger(__name__)


Point = Dict[str, float]


def _distance_squared(a: Point, b: Point, dims: Sequence[str]) -> float:
    total = 0.0
    for d in dims:
        delta = a.get(d, 0.0) - b.get(d, 0.0)
        total += delta * delta
    return total


def _centroid(points: Sequence[Point], dims: Sequence[str]) -> Point:
    n = len(points)
    return {d: sum(p.get(d, 0.0) for p in points) / n for d in dims}


@dataclass
class Cluster:
    """One k-means cluster: member indexes into the input list + centroid."""

    members: List[int]
    centroid: Point

    def __len__(self) -> int:
        return len(self.members)


@dataclass
class KMeansResult:
    clusters: List[Cluster]
    iterations: int
    inertia: float

    @property
    def k(self) -> int:
        return len(self.clusters)


def kmeans(
    points: Sequence[Point],
    k: int,
    dims: Sequence[str],
    seed: int = 0,
    max_iterations: int = 50,
) -> KMeansResult:
    """Lloyd's k-means with k-means++ seeding over dict-valued points.

    ``k`` is clamped to ``len(points)``; empty clusters are dropped from the
    result rather than re-seeded (the level ranking only needs non-empty
    clusters).
    """
    if not points:
        raise SelectionError("cannot cluster an empty candidate set")
    k = min(k, len(points))
    rng = random.Random(seed)

    # k-means++ seeding.  Points coinciding with an already-chosen centroid
    # (distance 0) are never re-picked: a duplicate seed can only produce an
    # empty cluster that gets silently dropped, shrinking the level ladder.
    centroids: List[Point] = [dict(points[rng.randrange(len(points))])]
    while len(centroids) < k:
        distances = [
            min(_distance_squared(p, c, dims) for c in centroids) for p in points
        ]
        total = sum(distances)
        if total <= 0:
            # Every point coincides with an existing centroid; further seeds
            # would all be duplicates.  Stop with fewer, distinct centroids.
            break
        threshold = rng.uniform(0, total)
        cumulative = 0.0
        picked: Optional[int] = None
        for i, d in enumerate(distances):
            if d <= 0.0:
                continue
            cumulative += d
            if cumulative >= threshold:
                picked = i
                break
        if picked is None:
            # Floating-point shortfall in the cumulative sum; the farthest
            # point is distinct from every centroid because total > 0.
            picked = max(range(len(points)), key=distances.__getitem__)
        centroids.append(dict(points[picked]))

    assignment = [-1] * len(points)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        changed = False
        buckets: List[List[int]] = [[] for _ in centroids]
        for i, p in enumerate(points):
            best_j = min(
                range(len(centroids)),
                key=lambda j: _distance_squared(p, centroids[j], dims),
            )
            buckets[best_j].append(i)
            if assignment[i] != best_j:
                assignment[i] = best_j
                changed = True
        new_centroids: List[Point] = []
        for j, bucket in enumerate(buckets):
            if bucket:
                new_centroids.append(_centroid([points[i] for i in bucket], dims))
            else:
                new_centroids.append(centroids[j])
        centroids = new_centroids
        if not changed:
            break

    clusters = []
    buckets = [[] for _ in centroids]
    for i, j in enumerate(assignment):
        buckets[j].append(i)
    inertia = 0.0
    for j, bucket in enumerate(buckets):
        if not bucket:
            continue
        clusters.append(Cluster(members=bucket, centroid=centroids[j]))
        inertia += sum(
            _distance_squared(points[i], centroids[j], dims) for i in bucket
        )
    return KMeansResult(clusters=clusters, iterations=iterations, inertia=inertia)


@dataclass
class QoSLevel:
    """A ranked cluster of services for one activity (``QL_r``).

    ``rank`` 0 is the best level.  ``member_indexes`` index into the
    activity's candidate list; ``centroid_utility`` is the SAW utility of
    the centroid under the user's weights; ``representative`` is the index
    of the highest-utility member (used as the level's stand-in during the
    global phase).
    """

    rank: int
    member_indexes: List[int]
    centroid: Point
    centroid_utility: float
    representative: int

    def __len__(self) -> int:
        return len(self.member_indexes)


def build_qos_levels(
    points: Sequence[Point],
    utilities: Sequence[float],
    weights: Mapping[str, float],
    k: int,
    seed: int = 0,
) -> Tuple[List[QoSLevel], KMeansResult]:
    """Cluster normalised candidate QoS and rank clusters into QoS levels.

    ``points`` are normalised (1 = best) per-property scores; ``utilities``
    the per-candidate SAW utilities (same order).  The centroid utility used
    for ranking is the weighted sum of the centroid's dimensions — the
    utility "a typical member" of the cluster offers.
    """
    dims = sorted(weights)
    result = kmeans(points, k, dims, seed=seed)
    levels: List[QoSLevel] = []
    for cluster in result.clusters:
        centroid_utility = sum(
            weights[d] * cluster.centroid.get(d, 0.0) for d in dims
        )
        representative = max(cluster.members, key=lambda i: utilities[i])
        levels.append(
            QoSLevel(
                rank=-1,
                member_indexes=sorted(
                    cluster.members, key=lambda i: -utilities[i]
                ),
                centroid=cluster.centroid,
                centroid_utility=centroid_utility,
                representative=representative,
            )
        )
    levels.sort(key=lambda lv: -lv.centroid_utility)
    for rank, level in enumerate(levels):
        level.rank = rank
    requested = min(k, len(points))
    if len(levels) < requested:
        logger.warning(
            "k-means produced %d QoS levels out of %d requested "
            "(duplicate candidate QoS collapses clusters)",
            len(levels),
            requested,
        )
    return levels, result


def quantise_classes(
    level: QoSLevel,
    points: Sequence[Point],
    decimals: int = 2,
) -> Dict[Tuple, List[int]]:
    """Group a level's members into QoS classes ``QC_{r,e}``.

    Members whose normalised QoS coincide after rounding belong to the same
    class — they are interchangeable for substitution purposes.
    """
    classes: Dict[Tuple, List[int]] = {}
    for i in level.member_indexes:
        key = tuple(
            (name, round(value, decimals))
            for name, value in sorted(points[i].items())
        )
        classes.setdefault(key, []).append(i)
    return classes
