"""Baseline selection algorithms (§IV.5, §VI.3.2).

The paper measures QASSA's *optimality* against the exhaustive optimum and
its *timeliness* against classic alternatives.  Four baselines are provided,
all sharing QASSA's interface (``select(request, candidates)`` →
:class:`~repro.composition.selection.CompositionPlan`):

* :class:`ExhaustiveSelection` — enumerates the full assignment space and
  returns the feasible composition with maximum utility.  Exact but
  exponential (the NP-hard reference).
* :class:`GreedySelection` — local selection only: the highest-utility
  service per activity, ignoring global constraints (the "greedy way" of
  §I.3.3; cheap but offers no feasibility guarantee).
* :class:`RandomSelection` — uniform random assignments with retries; the
  sanity floor for optimality plots.
* :class:`GeneticSelection` — a penalty-based genetic algorithm in the style
  of Canfora et al., the classic heuristic competitor for QoS-aware
  composition.

(See :class:`repro.composition.exact.ExactSelection` for the branch-and-
bound oracle that replaces exhaustive enumeration at realistic scales.)

**The ``best_effort`` contract** — uniform across every selector here,
QASSA and :class:`~repro.composition.exact.ExactSelection`:

* ``best_effort=False`` (the default everywhere): ``select()`` raises
  :class:`~repro.errors.SelectionError` when the algorithm finds no
  assignment satisfying the request's global constraints.  For the exact
  algorithms that is a proof of infeasibility; for the heuristics it only
  means *they* found nothing feasible.
* ``best_effort=True``: instead of raising, the highest-utility assignment
  the algorithm examined is returned with ``plan.feasible == False``, so
  optimality plots and the adaptation framework can still reason about
  near-misses.

Every returned plan's ``feasible`` flag is always consistent with
``request.satisfied_by(plan.aggregated_qos)``.
"""

from __future__ import annotations

import itertools
import random
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SelectionError
from repro.qos.properties import QoSProperty
from repro.services.description import ServiceDescription
from repro.composition.aggregation import AggregationApproach
from repro.composition.request import UserRequest
from repro.composition.selection import (
    CandidateSets,
    CompositionPlan,
    SelectedActivity,
    SelectionStatistics,
    evaluate_assignment,
    make_global_normalizer,
)
from repro.composition.utility import Normalizer, service_utility


class _BaseSelector:
    """Shared plumbing for baseline selectors."""

    def __init__(
        self,
        properties: Mapping[str, QoSProperty],
        approach: AggregationApproach = AggregationApproach.PESSIMISTIC,
    ) -> None:
        self.properties = dict(properties)
        self.approach = approach

    def _relevant(self, request: UserRequest) -> Dict[str, QoSProperty]:
        names = request.relevant_properties or tuple(self.properties)
        missing = [n for n in names if n not in self.properties]
        if missing:
            raise SelectionError(
                f"request refers to properties unknown to the selector: {missing}"
            )
        return {n: self.properties[n] for n in names}

    def _plan(
        self,
        request: UserRequest,
        assignment: Mapping[str, ServiceDescription],
        candidates: CandidateSets,
        aggregated,
        utility: float,
        feasible: bool,
        stats: SelectionStatistics,
        alternates: int = 0,
    ) -> CompositionPlan:
        relevant: Optional[Dict[str, QoSProperty]] = None
        weights: Optional[Dict[str, float]] = None
        selections = {}
        for name, primary in assignment.items():
            ranked = [primary]
            if alternates:
                # Alternates back a plan's dynamic binding/substitution, so
                # they must actually be *ranked*: score each non-primary
                # candidate with the activity's local SAW utility and keep
                # the best (candidate order breaks exact ties).
                if relevant is None:
                    relevant = self._relevant(request)
                    weights = request.normalised_weights(relevant)
                pool = candidates[name]
                local_norm = Normalizer.from_vectors(
                    [s.advertised_qos for s in pool], relevant
                )
                scored = sorted(
                    (s for s in pool if s != primary),
                    key=lambda s: -service_utility(
                        s.advertised_qos, local_norm, weights
                    ),
                )
                ranked.extend(scored[:alternates])
            selections[name] = SelectedActivity(name, ranked)
        return CompositionPlan(
            task=request.task,
            request=request,
            selections=selections,
            aggregated_qos=aggregated,
            utility=utility,
            feasible=feasible,
            approach=self.approach,
            statistics=stats,
        )


class ExhaustiveSelection(_BaseSelector):
    """Exact optimum by full enumeration — the optimality reference.

    ``limit`` guards against accidental combinatorial explosions in tests;
    exceeding it raises so a benchmark never silently runs for hours.
    """

    def __init__(
        self,
        properties: Mapping[str, QoSProperty],
        approach: AggregationApproach = AggregationApproach.PESSIMISTIC,
        limit: int = 5_000_000,
    ) -> None:
        super().__init__(properties, approach)
        self.limit = limit

    def select(
        self,
        request: UserRequest,
        candidates: CandidateSets,
        best_effort: bool = False,
        alternates: int = 0,
    ) -> CompositionPlan:
        started = time.perf_counter()
        stats = SelectionStatistics(search_space=candidates.search_space())
        if stats.search_space > self.limit:
            raise SelectionError(
                f"exhaustive search space {stats.search_space} exceeds "
                f"limit {self.limit}"
            )
        relevant = self._relevant(request)
        normalizer = make_global_normalizer(
            request.task, candidates, relevant, self.approach
        )
        names = candidates.activity_names()
        best: Optional[Tuple[float, Dict[str, ServiceDescription], object]] = None
        best_any: Optional[Tuple[float, Dict[str, ServiceDescription], object]] = None

        for combo in itertools.product(*(candidates[name] for name in names)):
            assignment = dict(zip(names, combo))
            aggregated, utility, feasible = evaluate_assignment(
                request.task, request, assignment, relevant, normalizer,
                self.approach,
            )
            stats.combinations_explored += 1
            stats.utility_evaluations += 1
            entry = (utility, assignment, aggregated)
            if feasible and (best is None or utility > best[0]):
                best = entry
            if best_any is None or utility > best_any[0]:
                best_any = entry

        stats.elapsed_seconds = time.perf_counter() - started
        if best is not None:
            utility, assignment, aggregated = best
            return self._plan(
                request, assignment, candidates, aggregated, utility, True,
                stats, alternates,
            )
        if best_effort and best_any is not None:
            utility, assignment, aggregated = best_any
            return self._plan(
                request, assignment, candidates, aggregated, utility, False,
                stats, alternates,
            )
        raise SelectionError("no feasible composition exists (exhaustive proof)")


class GreedySelection(_BaseSelector):
    """Local-best selection: per-activity utility maximisation.

    Runs in O(total candidates) but ignores global constraints entirely —
    the resulting plan may be infeasible, which is precisely the weakness
    the paper's global phase addresses.  Like every other selector it
    raises on an infeasible outcome unless ``best_effort`` is set (see the
    module docstring for the contract); callers charting greedy's missing
    feasibility guarantee pass ``best_effort=True`` explicitly.
    """

    def select(
        self,
        request: UserRequest,
        candidates: CandidateSets,
        best_effort: bool = False,
        alternates: int = 0,
    ) -> CompositionPlan:
        started = time.perf_counter()
        stats = SelectionStatistics(search_space=candidates.search_space())
        relevant = self._relevant(request)
        weights = request.normalised_weights(relevant)
        normalizer = make_global_normalizer(
            request.task, candidates, relevant, self.approach
        )

        assignment: Dict[str, ServiceDescription] = {}
        for name in candidates.activity_names():
            services = candidates[name]
            local_norm = Normalizer.from_vectors(
                [s.advertised_qos for s in services], relevant
            )
            scored = [
                (service_utility(s.advertised_qos, local_norm, weights), s)
                for s in services
            ]
            stats.utility_evaluations += len(scored)
            assignment[name] = max(scored, key=lambda pair: pair[0])[1]

        aggregated, utility, feasible = evaluate_assignment(
            request.task, request, assignment, relevant, normalizer, self.approach
        )
        stats.utility_evaluations += 1
        stats.combinations_explored = 1
        stats.elapsed_seconds = time.perf_counter() - started
        if not feasible and not best_effort:
            raise SelectionError("greedy selection violates the global constraints")
        return self._plan(
            request, assignment, candidates, aggregated, utility, feasible,
            stats, alternates,
        )


class RandomSelection(_BaseSelector):
    """Uniform random assignments — the optimality floor.

    All ``attempts`` samples are drawn and the *best* feasible one (by
    utility) is returned — returning the first feasible hit would
    understate the random baseline in optimality plots.
    """

    def __init__(
        self,
        properties: Mapping[str, QoSProperty],
        approach: AggregationApproach = AggregationApproach.PESSIMISTIC,
        attempts: int = 100,
        seed: int = 0,
    ) -> None:
        super().__init__(properties, approach)
        self.attempts = attempts
        self.seed = seed

    def select(
        self,
        request: UserRequest,
        candidates: CandidateSets,
        best_effort: bool = False,
        alternates: int = 0,
    ) -> CompositionPlan:
        started = time.perf_counter()
        stats = SelectionStatistics(search_space=candidates.search_space())
        relevant = self._relevant(request)
        normalizer = make_global_normalizer(
            request.task, candidates, relevant, self.approach
        )
        rng = random.Random(self.seed)
        names = candidates.activity_names()
        best_feasible = None
        best_any = None

        for _ in range(self.attempts):
            assignment = {name: rng.choice(candidates[name]) for name in names}
            aggregated, utility, feasible = evaluate_assignment(
                request.task, request, assignment, relevant, normalizer,
                self.approach,
            )
            stats.combinations_explored += 1
            stats.utility_evaluations += 1
            if feasible and (best_feasible is None or utility > best_feasible[0]):
                best_feasible = (utility, assignment, aggregated)
            if best_any is None or utility > best_any[0]:
                best_any = (utility, assignment, aggregated)

        stats.elapsed_seconds = time.perf_counter() - started
        if best_feasible is not None:
            utility, assignment, aggregated = best_feasible
            return self._plan(
                request, assignment, candidates, aggregated, utility, True,
                stats, alternates,
            )
        if best_effort and best_any is not None:
            utility, assignment, aggregated = best_any
            return self._plan(
                request, assignment, candidates, aggregated, utility, False,
                stats, alternates,
            )
        raise SelectionError(
            f"random selection found no feasible composition in "
            f"{self.attempts} attempts"
        )


class GeneticSelection(_BaseSelector):
    """A penalty-based genetic algorithm (Canfora-style competitor).

    Chromosome = one candidate index per activity.  Fitness = composition
    utility minus a penalty proportional to total normalised constraint
    violation.  Tournament selection, single-point crossover, per-gene
    mutation.
    """

    def __init__(
        self,
        properties: Mapping[str, QoSProperty],
        approach: AggregationApproach = AggregationApproach.PESSIMISTIC,
        population_size: int = 40,
        generations: int = 60,
        crossover_rate: float = 0.8,
        mutation_rate: float = 0.05,
        penalty_weight: float = 2.0,
        seed: int = 0,
    ) -> None:
        super().__init__(properties, approach)
        self.population_size = population_size
        self.generations = generations
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate
        self.penalty_weight = penalty_weight
        self.seed = seed

    def select(
        self,
        request: UserRequest,
        candidates: CandidateSets,
        best_effort: bool = False,
        alternates: int = 0,
    ) -> CompositionPlan:
        started = time.perf_counter()
        stats = SelectionStatistics(search_space=candidates.search_space())
        relevant = self._relevant(request)
        normalizer = make_global_normalizer(
            request.task, candidates, relevant, self.approach
        )
        rng = random.Random(self.seed)
        names = candidates.activity_names()
        sizes = [len(candidates[name]) for name in names]

        def decode(chromosome: Sequence[int]) -> Dict[str, ServiceDescription]:
            return {
                name: candidates[name][gene]
                for name, gene in zip(names, chromosome)
            }

        def penalty(aggregated) -> float:
            total = 0.0
            for constraint in request.constraints:
                value = aggregated.get(constraint.property_name)
                if value is None:
                    total += 1.0
                    continue
                slack = constraint.slack(value)
                if slack < 0:
                    scale = abs(constraint.bound) or 1.0
                    total += min(-slack / scale, 1.0)
            return total

        def evaluate(chromosome: Tuple[int, ...]):
            assignment = decode(chromosome)
            aggregated, utility, feasible = evaluate_assignment(
                request.task, request, assignment, relevant, normalizer,
                self.approach,
            )
            stats.utility_evaluations += 1
            fitness = utility - self.penalty_weight * penalty(aggregated)
            return fitness, utility, feasible, assignment, aggregated

        population = [
            tuple(rng.randrange(size) for size in sizes)
            for _ in range(self.population_size)
        ]
        cache: Dict[Tuple[int, ...], Tuple] = {}
        best_feasible = None
        best_any = None

        for _ in range(self.generations):
            scored = []
            for chromosome in population:
                if chromosome not in cache:
                    cache[chromosome] = evaluate(chromosome)
                    stats.combinations_explored += 1
                scored.append((chromosome, cache[chromosome]))
                fitness, utility, feasible, assignment, aggregated = cache[chromosome]
                if feasible and (best_feasible is None or utility > best_feasible[0]):
                    best_feasible = (utility, assignment, aggregated)
                if best_any is None or utility > best_any[0]:
                    best_any = (utility, assignment, aggregated)

            def tournament() -> Tuple[int, ...]:
                a, b = rng.choice(scored), rng.choice(scored)
                return a[0] if a[1][0] >= b[1][0] else b[0]

            next_population: List[Tuple[int, ...]] = []
            # Elitism: carry the best chromosome over unchanged.
            elite = max(scored, key=lambda pair: pair[1][0])[0]
            next_population.append(elite)
            while len(next_population) < self.population_size:
                parent_a, parent_b = tournament(), tournament()
                if len(names) > 1 and rng.random() < self.crossover_rate:
                    cut = rng.randrange(1, len(names))
                    child = parent_a[:cut] + parent_b[cut:]
                else:
                    child = parent_a
                child = tuple(
                    rng.randrange(sizes[i])
                    if rng.random() < self.mutation_rate
                    else gene
                    for i, gene in enumerate(child)
                )
                next_population.append(child)
            population = next_population

        stats.elapsed_seconds = time.perf_counter() - started
        if best_feasible is not None:
            utility, assignment, aggregated = best_feasible
            return self._plan(
                request, assignment, candidates, aggregated, utility, True,
                stats, alternates,
            )
        if best_effort and best_any is not None:
            utility, assignment, aggregated = best_any
            return self._plan(
                request, assignment, candidates, aggregated, utility, False,
                stats, alternates,
            )
        raise SelectionError("genetic search found no feasible composition")
