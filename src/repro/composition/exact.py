"""Exact branch-and-bound selection — the scalable optimality oracle.

:class:`ExhaustiveSelection` proves optimality by enumerating the full
assignment space, which explodes combinatorially and hard-fails past its
``limit`` — so the paper's >90 %-of-optimum claim (§VI.3.2) was only
verifiable at toy sizes.  :class:`ExactSelection` computes the *same*
optimum by branch and bound over the binary service-per-activity decision
model:

* **Search tree** — activities are fixed one at a time (in the task's
  activity order, matching the enumeration order of
  :class:`ExhaustiveSelection`); each tree node is a partial assignment.
* **Admissible pruning** — for every partial assignment, per-property
  *aggregation bounds* are computed by aggregating the fixed services'
  values together with each free activity's per-candidate extremes over
  the pattern tree.  All of Table IV.1's operators (sum, product of
  non-negative values, min, max, mean, the loop/conditional resolutions)
  are monotone non-decreasing in every activity value, so plugging
  per-activity minima/maxima yields true lower/upper bounds on any
  completion's aggregate.  A node is pruned when

  - some global constraint is unsatisfiable even at its favourable bound
    (optimistic aggregate already violates the constraint), or
  - the utility upper bound (weights × best-achievable normalised values,
    summed in the same order as :func:`composition_utility`) cannot beat
    the incumbent.

* **Variable fixing** — before the search, candidates that are Pareto-
  dominated within their activity on all relevant properties are dropped
  (the dominator yields a plan that is no worse and earlier in enumeration
  order), and candidates that cannot appear in *any* feasible assignment
  (their single-candidate bound already violates a constraint) are removed
  iteratively until a fixpoint.
* **Deterministic node ordering** — candidates are explored in a fixed
  utility-guided order with index tie-breaks, and the incumbent update
  reproduces :class:`ExhaustiveSelection`'s tie-break exactly (first
  maximum in product-enumeration order), so runs are replay-stable and
  plans are byte-identical to the enumeration wherever both run.

The result: the same plan as exhaustive enumeration on every tractable
instance while exploring orders of magnitude fewer nodes, and exact optima
(hence true optimality gaps) at sizes where enumeration is impossible.
See ``docs/OPTIMALITY.md`` for the formulation and the gap methodology.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SelectionError
from repro.qos.properties import AggregationKind, Direction, QoSProperty
from repro.services.description import ServiceDescription
from repro.composition.aggregation import (
    AggregationApproach,
    aggregate_values,
)
from repro.composition.request import UserRequest
from repro.composition.baselines import _BaseSelector
from repro.composition.selection import (
    CandidateSets,
    CompositionPlan,
    SelectionStatistics,
    evaluate_assignment,
    make_global_normalizer,
)


@dataclass
class _Candidate:
    """One candidate service with its raw values over the relevant set."""

    index: int                       # position in the original candidate list
    service: ServiceDescription
    values: Dict[str, float]         # property name -> advertised value


class ExactSelection(_BaseSelector):
    """Exact optimum by branch and bound — the scalable oracle.

    Shares the baseline ``select(request, candidates)`` interface and the
    exact semantics of :class:`ExhaustiveSelection` (same optimum, same
    tie-break, same infeasibility proof, same ``best_effort`` fallback),
    but prunes the assignment space with admissible per-property
    aggregation bounds instead of enumerating it.

    ``max_nodes`` guards against adversarial instances where the bounds
    are too loose to prune (mirrors the enumeration's ``limit``): the
    search raises :class:`SelectionError` rather than running unbounded.

    Every candidate must advertise every relevant property (the same
    precondition under which :class:`ExhaustiveSelection` completes
    without an aggregation error); violations raise a clear
    :class:`SelectionError` up front instead of failing mid-search.
    """

    def __init__(
        self,
        properties: Mapping[str, QoSProperty],
        approach: AggregationApproach = AggregationApproach.PESSIMISTIC,
        max_nodes: int = 2_000_000,
    ) -> None:
        super().__init__(properties, approach)
        self.max_nodes = max_nodes

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def select(
        self,
        request: UserRequest,
        candidates: CandidateSets,
        best_effort: bool = False,
        alternates: int = 0,
    ) -> CompositionPlan:
        started = time.perf_counter()
        stats = SelectionStatistics(search_space=candidates.search_space())
        relevant = self._relevant(request)
        normalizer = make_global_normalizer(
            request.task, candidates, relevant, self.approach
        )
        weights = request.normalised_weights(relevant)
        names = candidates.activity_names()

        pools = self._build_pools(names, candidates, relevant)
        kept = self._dominance_fixing(pools, relevant, request, stats)

        search = _Search(
            task=request.task,
            request=request,
            names=names,
            relevant=relevant,
            normalizer=normalizer,
            weights=weights,
            approach=self.approach,
            stats=stats,
            max_nodes=self.max_nodes,
        )

        feasible_pools = self._constraint_fixing(kept, request, search, stats)
        best = None
        if feasible_pools is not None:
            best = search.run(feasible_pools, enforce_constraints=True)
        if best is not None:
            utility, assignment, aggregated = best
            stats.elapsed_seconds = time.perf_counter() - started
            return self._plan(
                request, assignment, candidates, aggregated, utility, True,
                stats, alternates,
            )
        if best_effort:
            # No feasible assignment exists; find the highest-utility one
            # overall, exactly as ExhaustiveSelection's best_any fallback.
            best_any = search.run(kept, enforce_constraints=False)
            if best_any is not None:
                utility, assignment, aggregated = best_any
                stats.elapsed_seconds = time.perf_counter() - started
                return self._plan(
                    request, assignment, candidates, aggregated, utility,
                    False, stats, alternates,
                )
        stats.elapsed_seconds = time.perf_counter() - started
        raise SelectionError(
            "no feasible composition exists (branch-and-bound proof)"
        )

    # ------------------------------------------------------------------
    # variable fixing
    # ------------------------------------------------------------------
    def _build_pools(
        self,
        names: Sequence[str],
        candidates: CandidateSets,
        relevant: Mapping[str, QoSProperty],
    ) -> Dict[str, List[_Candidate]]:
        pools: Dict[str, List[_Candidate]] = {}
        for name in names:
            pool: List[_Candidate] = []
            for index, service in enumerate(candidates[name]):
                values: Dict[str, float] = {}
                for pname, prop in relevant.items():
                    value = service.advertised_qos.get(pname)
                    if value is None:
                        raise SelectionError(
                            f"candidate {service.service_id!r} of activity "
                            f"{name!r} does not advertise the relevant "
                            f"property {pname!r}"
                        )
                    if value < 0 and (
                        prop.aggregation is AggregationKind.MULTIPLICATIVE
                    ):
                        # Bound admissibility relies on the product/power
                        # operators being monotone, which needs >= 0 values.
                        raise SelectionError(
                            f"candidate {service.service_id!r} advertises a "
                            f"negative value for multiplicative property "
                            f"{pname!r}; bounds would be inadmissible"
                        )
                    values[pname] = value
                pool.append(_Candidate(index, service, values))
            pools[name] = pool
        return pools

    def _dominance_fixing(
        self,
        pools: Mapping[str, List[_Candidate]],
        relevant: Mapping[str, QoSProperty],
        request: UserRequest,
        stats: SelectionStatistics,
    ) -> Dict[str, List[_Candidate]]:
        """Drop candidates weakly dominated by an earlier candidate.

        Candidate ``j`` is removable when some candidate ``i`` with a
        *smaller original index* is at least as good on every relevant
        property (direction-aware).  Any assignment using ``j`` then maps
        to one using ``i`` with utility no lower, feasibility no worse and
        an earlier position in enumeration order, so the optimum
        ExhaustiveSelection would report never contains ``j`` — including
        under its first-maximum tie-break.

        Properties carrying a constraint *against* their natural direction
        (a floor on response time, say) are excluded from the "at least as
        good" test and must match exactly: improving such a property can
        break feasibility, so dominance is only claimed on equal values.
        """
        natural: Dict[str, bool] = {name: True for name in relevant}
        for constraint in request.constraints:
            prop = relevant.get(constraint.property_name)
            if prop is None:
                continue
            expected = "<=" if prop.direction is Direction.NEGATIVE else ">="
            if constraint.operator != expected:
                natural[constraint.property_name] = False

        kept: Dict[str, List[_Candidate]] = {}
        dropped_total = 0
        for name, pool in pools.items():
            survivors: List[_Candidate] = []
            for cand in pool:
                dominated = False
                for earlier in survivors:
                    if self._weakly_dominates(
                        earlier, cand, relevant, natural
                    ):
                        dominated = True
                        break
                if dominated:
                    dropped_total += 1
                else:
                    survivors.append(cand)
            kept[name] = survivors
        stats.extra["fixed_dominated"] = float(dropped_total)
        return kept

    @staticmethod
    def _weakly_dominates(
        a: _Candidate,
        b: _Candidate,
        relevant: Mapping[str, QoSProperty],
        natural: Mapping[str, bool],
    ) -> bool:
        """``a`` at least as good as ``b`` on every relevant property."""
        for pname, prop in relevant.items():
            va, vb = a.values[pname], b.values[pname]
            if va == vb:
                continue
            if not natural[pname]:
                return False
            if prop.better(vb, va):
                return False
        return True

    def _constraint_fixing(
        self,
        kept: Mapping[str, List[_Candidate]],
        request: UserRequest,
        search: "_Search",
        stats: SelectionStatistics,
    ) -> Optional[Dict[str, List[_Candidate]]]:
        """Remove candidates that cannot appear in any feasible assignment.

        For each candidate, aggregate its values together with every other
        activity's favourable extreme; if some constraint is violated even
        then, no completion containing the candidate is feasible.  Removing
        candidates tightens the extremes, so the filter iterates to a
        fixpoint.  Returns ``None`` when an activity runs empty — a proof
        that no feasible assignment exists at all.
        """
        if not request.constraints:
            return {name: list(pool) for name, pool in kept.items()}
        pools = {name: list(pool) for name, pool in kept.items()}
        removed_total = 0
        changed = True
        while changed:
            changed = False
            extremes = search.pool_extremes(pools)
            for name, pool in pools.items():
                if not pool:
                    return None
                survivors = [
                    cand for cand in pool
                    if search.candidate_feasible(name, cand, extremes)
                ]
                if len(survivors) != len(pool):
                    removed_total += len(pool) - len(survivors)
                    pools[name] = survivors
                    changed = True
            if any(not pool for pool in pools.values()):
                stats.extra["fixed_infeasible"] = float(removed_total)
                return None
        stats.extra["fixed_infeasible"] = float(removed_total)
        return pools


class _Search:
    """One depth-first branch-and-bound pass over the candidate pools."""

    def __init__(
        self,
        task,
        request: UserRequest,
        names: Sequence[str],
        relevant: Mapping[str, QoSProperty],
        normalizer,
        weights: Mapping[str, float],
        approach: AggregationApproach,
        stats: SelectionStatistics,
        max_nodes: int,
    ) -> None:
        self.task = task
        self.request = request
        self.names = list(names)
        self.relevant = dict(relevant)
        self.normalizer = normalizer
        self.weights = dict(weights)
        self.approach = approach
        self.stats = stats
        self.max_nodes = max_nodes

    # -- bounds --------------------------------------------------------
    def pool_extremes(
        self, pools: Mapping[str, List[_Candidate]]
    ) -> Dict[str, Dict[str, Tuple[float, float]]]:
        """activity -> property -> (min, max) raw value over the pool."""
        extremes: Dict[str, Dict[str, Tuple[float, float]]] = {}
        for name, pool in pools.items():
            per_prop: Dict[str, Tuple[float, float]] = {}
            for pname in self.relevant:
                values = [cand.values[pname] for cand in pool]
                if values:
                    per_prop[pname] = (min(values), max(values))
            extremes[name] = per_prop
        return extremes

    def _aggregate_extreme(
        self,
        pname: str,
        fixed: Mapping[str, float],
        extremes: Mapping[str, Mapping[str, Tuple[float, float]]],
        hi: bool,
    ) -> float:
        """Lower (``hi=False``) or upper bound on the aggregated value.

        Every aggregation operator is monotone non-decreasing in each
        activity value, so the bound plugs each free activity's raw
        min (or max) into the pattern tree.
        """
        side = 1 if hi else 0
        activity_values = dict(fixed)
        for name in self.names:
            if name not in activity_values:
                activity_values[name] = extremes[name][pname][side]
        prop = self.relevant[pname]
        return aggregate_values(
            prop, self.task.root, activity_values, self.approach
        )

    def constraints_satisfiable(
        self,
        fixed: Mapping[str, Dict[str, float]],
        extremes: Mapping[str, Mapping[str, Tuple[float, float]]],
    ) -> bool:
        """Whether some completion can still satisfy every constraint."""
        fixed_per_prop: Dict[str, Dict[str, float]] = {}
        for pname in self.relevant:
            fixed_per_prop[pname] = {
                name: values[pname] for name, values in fixed.items()
            }
        for constraint in self.request.constraints:
            pname = constraint.property_name
            if pname not in self.relevant:
                # A constraint on a property outside the relevant set never
                # occurs via UserRequest.relevant_properties; be safe.
                continue
            favourable = self._aggregate_extreme(
                pname, fixed_per_prop[pname], extremes,
                hi=(constraint.operator == ">="),
            )
            if not constraint.satisfied_by(favourable):
                return False
        return True

    def candidate_feasible(
        self,
        name: str,
        cand: _Candidate,
        extremes: Mapping[str, Mapping[str, Tuple[float, float]]],
    ) -> bool:
        return self.constraints_satisfiable({name: cand.values}, extremes)

    def utility_bound(
        self,
        fixed: Mapping[str, Dict[str, float]],
        extremes: Mapping[str, Mapping[str, Tuple[float, float]]],
    ) -> float:
        """Upper bound on any completion's composition utility.

        Summed in ``weights`` iteration order with the same per-term
        operations as :func:`composition_utility`, so float monotonicity
        guarantees ``bound >= utility(completion)`` bit-for-bit.
        """
        total = 0.0
        for pname, weight in self.weights.items():
            prop = self.relevant[pname]
            fixed_values = {
                name: values[pname] for name, values in fixed.items()
            }
            best_agg = self._aggregate_extreme(
                pname, fixed_values, extremes,
                hi=(prop.direction is Direction.POSITIVE),
            )
            total += weight * self.normalizer.normalise(pname, best_agg)
        return total

    # -- the search ----------------------------------------------------
    def run(
        self,
        pools: Mapping[str, List[_Candidate]],
        enforce_constraints: bool,
    ) -> Optional[Tuple[float, Dict[str, ServiceDescription], object]]:
        """DFS with pruning; returns (utility, assignment, aggregated).

        Reproduces ExhaustiveSelection's tie-break: among equal-utility
        optima the one earliest in product-enumeration order wins.  The
        incumbent therefore tracks the original index tuple, and a node
        whose bound *ties* the incumbent is only pruned when even its
        lexicographically smallest completion cannot precede the
        incumbent.
        """
        for pool in pools.values():
            if not pool:
                return None
        extremes = self.pool_extremes(pools)
        # Deterministic exploration order: utility-guided (a candidate's
        # solo SAW score against the global normaliser), index tie-break.
        ordered: Dict[str, List[_Candidate]] = {}
        for name, pool in pools.items():
            ordered[name] = sorted(
                pool,
                key=lambda cand: (-self._solo_score(cand), cand.index),
            )
        min_index: Dict[str, int] = {
            name: min(cand.index for cand in pool)
            for name, pool in pools.items()
        }

        best_utility: Optional[float] = None
        best_key: Optional[Tuple[int, ...]] = None
        best_payload: Optional[
            Tuple[float, Dict[str, ServiceDescription], object]
        ] = None
        nodes = 0
        names = self.names
        depth_count = len(names)

        fixed_values: Dict[str, Dict[str, float]] = {}
        fixed_services: Dict[str, ServiceDescription] = {}
        prefix_indexes: List[int] = []

        def min_completion_key(depth: int) -> Tuple[int, ...]:
            return tuple(
                prefix_indexes + [min_index[name] for name in names[depth:]]
            )

        def recurse(depth: int) -> None:
            nonlocal nodes, best_utility, best_key, best_payload
            nodes += 1
            if nodes > self.max_nodes:
                raise SelectionError(
                    f"branch-and-bound node budget exceeded "
                    f"({self.max_nodes} nodes)"
                )
            if depth == depth_count:
                assignment = dict(fixed_services)
                aggregated, utility, feasible = evaluate_assignment(
                    self.task, self.request, assignment, self.relevant,
                    self.normalizer, self.approach,
                )
                self.stats.combinations_explored += 1
                self.stats.utility_evaluations += 1
                if enforce_constraints and not feasible:
                    return
                key = tuple(prefix_indexes)
                if (
                    best_utility is None
                    or utility > best_utility
                    or (utility == best_utility and key < best_key)
                ):
                    best_utility = utility
                    best_key = key
                    best_payload = (utility, assignment, aggregated)
                return
            if enforce_constraints and not self.constraints_satisfiable(
                fixed_values, extremes
            ):
                self.stats.extra["pruned_infeasible"] = (
                    self.stats.extra.get("pruned_infeasible", 0.0) + 1.0
                )
                return
            if best_utility is not None:
                bound = self.utility_bound(fixed_values, extremes)
                if bound < best_utility or (
                    bound == best_utility
                    and min_completion_key(depth) >= best_key
                ):
                    self.stats.extra["pruned_bound"] = (
                        self.stats.extra.get("pruned_bound", 0.0) + 1.0
                    )
                    return
            name = names[depth]
            for cand in ordered[name]:
                fixed_values[name] = cand.values
                fixed_services[name] = cand.service
                prefix_indexes.append(cand.index)
                recurse(depth + 1)
                prefix_indexes.pop()
                del fixed_values[name]
                del fixed_services[name]

        recurse(0)
        self.stats.extra["nodes_expanded"] = (
            self.stats.extra.get("nodes_expanded", 0.0) + float(nodes)
        )
        return best_payload

    def _solo_score(self, cand: _Candidate) -> float:
        """Static ordering heuristic: the candidate's own weighted score
        against the global normaliser (higher first finds strong
        incumbents early; purely an ordering choice, never affects the
        returned optimum)."""
        total = 0.0
        for pname, weight in self.weights.items():
            total += weight * self.normalizer.normalise(
                pname, cand.values[pname]
            )
        return total
