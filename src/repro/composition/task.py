"""The composition model: user tasks as pattern-structured activity trees.

A user task ``T`` (§IV.2.2) is a composition of *abstract activities*
``A_1..A_n`` coordinated by *composition patterns*:

* :class:`Sequence` — activities executed one after the other;
* :class:`Parallel` — AND-split/AND-join, all branches execute;
* :class:`Conditional` — XOR-split, exactly one branch executes, with an
  optional probability per branch (used by the mean-value aggregation
  approach);
* :class:`Loop` — a body iterated up to ``max_iterations`` times, with an
  optional ``expected_iterations`` for mean-value aggregation.

The tree is immutable; structural helpers (activity listing, node counting,
pattern census) are what the selection algorithms and the behavioural-graph
transformation consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence as Seq, Tuple

from repro.errors import InvalidTaskError


@dataclass(frozen=True)
class Activity:
    """An abstract activity: a named slot to be bound to a concrete service.

    ``capability`` anchors the required functionality in the task ontology;
    ``inputs``/``outputs`` carry optional data-flow concepts used by
    discovery and by the data constraints of behavioural adaptation.
    ``optional`` marks an activity the composition can *gracefully skip*
    when no provider can be reached (see
    :mod:`repro.resilience.degradation`) — a notification, say, versus the
    payment it announces.
    """

    name: str
    capability: str
    inputs: FrozenSet[str] = frozenset()
    outputs: FrozenSet[str] = frozenset()
    optional: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidTaskError("activity name must be non-empty")
        if not self.capability:
            raise InvalidTaskError(f"activity {self.name!r} has no capability")

    def __str__(self) -> str:
        return self.name


class Node:
    """Base class of pattern-tree nodes."""

    def activities(self) -> List[Activity]:
        """All activities in document order (duplicates impossible: names
        are unique per task, enforced by :class:`Task`)."""
        raise NotImplementedError

    def children(self) -> Tuple["Node", ...]:
        raise NotImplementedError

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of the pattern tree."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class Leaf(Node):
    """A single activity occurrence in the pattern tree."""

    activity: Activity

    def activities(self) -> List[Activity]:
        return [self.activity]

    def children(self) -> Tuple[Node, ...]:
        return ()


@dataclass(frozen=True)
class Sequence(Node):
    """Sequential execution of children."""

    members: Tuple[Node, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise InvalidTaskError("sequence pattern needs at least one member")

    def activities(self) -> List[Activity]:
        return [a for m in self.members for a in m.activities()]

    def children(self) -> Tuple[Node, ...]:
        return self.members


@dataclass(frozen=True)
class Parallel(Node):
    """AND-split / AND-join: every branch executes concurrently."""

    branches: Tuple[Node, ...]

    def __post_init__(self) -> None:
        if len(self.branches) < 2:
            raise InvalidTaskError("parallel pattern needs at least two branches")

    def activities(self) -> List[Activity]:
        return [a for b in self.branches for a in b.activities()]

    def children(self) -> Tuple[Node, ...]:
        return self.branches


@dataclass(frozen=True)
class Conditional(Node):
    """XOR-split: exactly one branch executes at run time.

    ``probabilities`` (optional) must align with ``branches`` and sum to 1;
    they feed the mean-value aggregation approach.  Without probabilities a
    uniform law is assumed.
    """

    branches: Tuple[Node, ...]
    probabilities: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if len(self.branches) < 2:
            raise InvalidTaskError("conditional pattern needs at least two branches")
        if self.probabilities is not None:
            if len(self.probabilities) != len(self.branches):
                raise InvalidTaskError(
                    "conditional probabilities must align with branches"
                )
            if any(p < 0 for p in self.probabilities):
                raise InvalidTaskError("conditional probabilities must be >= 0")
            if abs(sum(self.probabilities) - 1.0) > 1e-9:
                raise InvalidTaskError("conditional probabilities must sum to 1")

    def branch_probabilities(self) -> Tuple[float, ...]:
        if self.probabilities is not None:
            return self.probabilities
        n = len(self.branches)
        return tuple(1.0 / n for _ in range(n))

    def activities(self) -> List[Activity]:
        return [a for b in self.branches for a in b.activities()]

    def children(self) -> Tuple[Node, ...]:
        return self.branches


@dataclass(frozen=True)
class Loop(Node):
    """Iterated execution of a body.

    ``max_iterations`` bounds pessimistic aggregation; ``expected_iterations``
    (defaulting to the midpoint of [1, max]) feeds mean-value aggregation.
    """

    body: Node
    max_iterations: int = 1
    expected_iterations: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise InvalidTaskError("loop max_iterations must be >= 1")
        if self.expected_iterations is not None and not (
            1.0 <= self.expected_iterations <= self.max_iterations
        ):
            raise InvalidTaskError(
                "loop expected_iterations must lie in [1, max_iterations]"
            )

    def mean_iterations(self) -> float:
        if self.expected_iterations is not None:
            return self.expected_iterations
        return (1.0 + self.max_iterations) / 2.0

    def activities(self) -> List[Activity]:
        return self.body.activities()

    def children(self) -> Tuple[Node, ...]:
        return (self.body,)


def leaf(name: str, capability: Optional[str] = None, **kwargs) -> Leaf:
    """Convenience constructor: ``leaf("Register", "task:Registration")``.

    When ``capability`` is omitted, a concept URI is derived from the name
    (``task:<Name>``), which keeps example/test code terse.
    """
    return Leaf(Activity(name, capability or f"task:{name}", **kwargs))


def sequence(*members: Node) -> Sequence:
    """Convenience constructor for a Sequence pattern."""
    return Sequence(tuple(members))


def parallel(*branches: Node) -> Parallel:
    """Convenience constructor for a Parallel (AND) pattern."""
    return Parallel(tuple(branches))


def conditional(*branches: Node, probabilities: Optional[Seq[float]] = None) -> Conditional:
    """Convenience constructor for a Conditional (XOR) pattern."""
    return Conditional(
        tuple(branches),
        tuple(probabilities) if probabilities is not None else None,
    )


def loop(body: Node, max_iterations: int, expected_iterations: Optional[float] = None) -> Loop:
    """Convenience constructor for a Loop pattern."""
    return Loop(body, max_iterations, expected_iterations)


@dataclass(frozen=True)
class Task:
    """A user task: a named pattern tree with unique activity names."""

    name: str
    root: Node

    def __post_init__(self) -> None:
        names = [a.name for a in self.root.activities()]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise InvalidTaskError(
                f"task {self.name!r} has duplicate activity names: {sorted(duplicates)}"
            )
        if not names:
            raise InvalidTaskError(f"task {self.name!r} has no activities")

    @property
    def activities(self) -> List[Activity]:
        return self.root.activities()

    @property
    def activity_names(self) -> List[str]:
        return [a.name for a in self.activities]

    def activity(self, name: str) -> Activity:
        for a in self.activities:
            if a.name == name:
                return a
        raise InvalidTaskError(f"task {self.name!r} has no activity {name!r}")

    def size(self) -> int:
        """Number of abstract activities (the ``n`` of the experiments)."""
        return len(self.activities)

    def pattern_census(self) -> Dict[str, int]:
        """How many nodes of each pattern kind the tree contains."""
        census: Dict[str, int] = {}
        for node in self.root.walk():
            kind = type(node).__name__
            census[kind] = census.get(kind, 0) + 1
        return census

    def has_pattern(self, pattern_type: type) -> bool:
        return any(isinstance(node, pattern_type) for node in self.root.walk())
