"""QASSA — the QoS-Aware Service Selection Algorithm (§IV.3).

QASSA solves QoS-aware selection under *global* QoS constraints — an
NP-hard problem — with a two-phase heuristic designed for the timeliness,
adaptation-support and distributivity requirements of pervasive
environments:

**Local selection phase** (per abstract activity, §IV.3.2):

1. the candidate QoS vectors are normalised against the candidate set
   (direction-aware min-max, 1 = best);
2. Pareto-dominated candidates are pruned (a dominated service can always
   be replaced by its dominator at no loss);
3. the survivors are clustered with k-means in normalised QoS space;
4. clusters are ranked by centroid utility into **QoS levels** ``QL_r``
   (rank 0 = best); each level's highest-utility member becomes its
   *representative*.

**Global selection phase** (§IV.3.3):

The algorithm searches the *level lattice* — one level choice per activity —
best-first.  A state's priority is the sum of its levels' centroid
utilities, which decreases monotonically along lattice edges (levels are
utility-sorted), so states are explored in near-best-utility order.  For
each popped state the representatives are aggregated over the task's pattern
tree and checked against the global constraints:

* **feasible** → the state yields a composition; several top members of each
  chosen level are kept as ranked alternates (dynamic binding / substitution
  support);
* **infeasible** → a bounded *repair* pass swaps cluster members to maximise
  slack on the most-violated constraint; if repair fails, the state's lattice
  successors are enqueued.

The search is capped (``max_combinations``); with utility-sorted levels the
first feasible states found are near-optimal, which is exactly the trade-off
Figs. VI.5-6 quantify (near-linear time, >90 % optimality).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SelectionError
from repro.qos.properties import QoSProperty
from repro.qos.values import QoSVector
from repro.services.description import ServiceDescription
from repro.composition import kernels
from repro.composition.aggregation import AggregationApproach, aggregation_bounds
from repro.composition.clustering import QoSLevel, build_qos_levels
from repro.composition.request import UserRequest
from repro.composition.selection import (
    CandidateSets,
    CompositionPlan,
    SelectedActivity,
    SelectionStatistics,
    evaluate_assignment,
)
from repro.composition.selection_cache import SelectionCache
from repro.composition.utility import Normalizer, service_utility
from repro.observability import core as observability_core


@dataclass(frozen=True)
class QassaConfig:
    """Tuning knobs of QASSA.

    ``levels_per_activity`` is the k of k-means (the paper uses a small
    constant so the lattice stays tractable).  ``alternates_kept`` bounds
    how many ranked services each activity retains for dynamic binding.
    ``max_combinations`` caps the global phase's lattice exploration;
    ``repair_passes`` bounds the per-state constraint-repair loop.

    ``vectorized`` routes the local-phase scoring pass and the global
    normaliser's aggregation bounds through the numpy kernels of
    :mod:`repro.composition.kernels`.  The kernels are bit-identical to
    the scalar path (enforced by the differential fuzzing harness), so
    the flag changes throughput, never plans; it is silently ignored when
    numpy is not installed.
    """

    levels_per_activity: int = 4
    alternates_kept: int = 3
    max_combinations: int = 5000
    repair_passes: int = 3
    refine_candidates: int = 10
    feasible_beam: int = 2
    prune_dominated: bool = True
    seed: int = 0
    vectorized: bool = True


@dataclass
class LocalSelection:
    """Output of the local phase for one activity.

    ``services`` are the clustered (post-pruning) candidates; ``reserve``
    holds the Pareto-dominated ones, utility-sorted — never selected as
    primaries, but still valid substitutes when the non-dominated pool is
    too small to fill the alternates quota.
    """

    activity_name: str
    services: List[ServiceDescription]
    points: List[Dict[str, float]]
    utilities: List[float]
    levels: List[QoSLevel]
    normalizer: Normalizer
    clustering_iterations: int
    reserve: List[ServiceDescription] = field(default_factory=list)
    #: Per-property ``(best, worst)`` advertised values over the *full*
    #: candidate set (pruned ones included) — lets the global normaliser be
    #: rebuilt from cached local selections without rescanning candidates.
    extremes: Dict[str, Tuple[float, float]] = field(default_factory=dict)


class QASSA:
    """The centralized QASSA selector.

    Parameters
    ----------
    properties:
        QoS property definitions the selector reasons over (usually the
        request's relevant subset of the model's registry).
    approach:
        Aggregation approach for run-time-unknown patterns.
    config:
        Algorithm tuning knobs.
    cache:
        Optional :class:`~repro.composition.selection_cache.SelectionCache`.
        When present, per-activity local-phase results are reused across
        ``select()`` calls whenever an activity's candidate pool is
        unchanged — churn and fault events then recompute only the
        activities they actually touched.  Chosen compositions are
        identical with and without the cache (the local phase is
        deterministic).
    """

    def __init__(
        self,
        properties: Mapping[str, QoSProperty],
        approach: AggregationApproach = AggregationApproach.PESSIMISTIC,
        config: QassaConfig = QassaConfig(),
        observability=None,
        cache: Optional[SelectionCache] = None,
    ) -> None:
        self.properties = dict(properties)
        self.approach = approach
        self.config = config
        self.cache = cache
        self.obs = observability_core.resolve(observability)
        self._use_kernels = config.vectorized and kernels.HAVE_NUMPY

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def select(
        self,
        request: UserRequest,
        candidates: CandidateSets,
        best_effort: bool = False,
    ) -> CompositionPlan:
        """Select a composition fulfilling the request.

        Raises :class:`SelectionError` when no explored combination meets
        the global constraints, unless ``best_effort`` is set — then the
        highest-utility infeasible plan is returned with
        ``plan.feasible == False`` (the adaptation framework uses this to
        decide whether behavioural adaptation should kick in).
        """
        started = time.perf_counter()
        with self.obs.span(
            "qassa.select", task=request.task.name,
            activities=len(candidates.activity_names()),
        ) as span:
            stats = SelectionStatistics(search_space=candidates.search_space())
            relevant = self._relevant_properties(request)
            weights = request.normalised_weights(relevant)

            locals_ = self._local_selections(candidates, relevant, weights, stats)
            plan = self._global_phase(
                request, candidates, locals_, relevant, weights, stats,
                best_effort
            )
            span.set(
                utility=plan.utility,
                feasible=plan.feasible,
                combinations_explored=stats.combinations_explored,
                utility_evaluations=stats.utility_evaluations,
            )
        stats.elapsed_seconds = time.perf_counter() - started
        plan.statistics = stats
        self.obs.counter("qassa_selections_total").inc()
        self.obs.histogram("qassa_selection_seconds").observe(
            stats.elapsed_seconds
        )
        self.obs.counter("qassa_combinations_explored_total").inc(
            stats.combinations_explored
        )
        return plan

    def select_ranked(
        self,
        request: UserRequest,
        candidates: CandidateSets,
        k: int = 3,
    ) -> List[CompositionPlan]:
        """Up to ``k`` distinct feasible compositions, best utility first.

        This is the §I.1 shopping-platform behaviour: *"The shopping
        platform proposes to Bob several compositions of shopping services
        meeting his requirements.  The proposed compositions are ranked
        according to their QoS."*  The lattice walk simply keeps going after
        the first feasible state instead of returning, deduplicating plans
        by their primary bindings.

        Raises :class:`SelectionError` when not even one feasible
        composition exists within the exploration budget.
        """
        if k < 1:
            raise SelectionError("k must be >= 1")
        started = time.perf_counter()
        stats = SelectionStatistics(search_space=candidates.search_space())
        relevant = self._relevant_properties(request)
        weights = request.normalised_weights(relevant)
        locals_ = self._local_selections(candidates, relevant, weights, stats)
        plans, _ = self._global_phase_multi(
            request, candidates, locals_, relevant, weights, stats, k
        )
        if not plans:
            raise SelectionError(
                "no service composition satisfies the global QoS constraints "
                f"(explored {stats.combinations_explored} level combinations)"
            )
        elapsed = time.perf_counter() - started
        plans.sort(key=lambda p: -p.utility)
        for plan in plans:
            plan.statistics = stats
        stats.elapsed_seconds = elapsed
        return plans

    def _global_phase_multi(
        self,
        request: UserRequest,
        candidates: CandidateSets,
        locals_: Mapping[str, LocalSelection],
        relevant: Mapping[str, QoSProperty],
        weights: Mapping[str, float],
        stats: SelectionStatistics,
        k: int,
    ) -> Tuple[List[CompositionPlan], Optional[CompositionPlan]]:
        """Best-first lattice walk collecting up to ``k`` feasible plans.

        Returns ``(feasible plans, best infeasible plan)`` — the latter for
        best-effort callers when nothing feasible exists in budget.
        """
        with self.obs.span("qassa.global", k=k) as span:
            plans, best_infeasible = self._lattice_walk(
                request, candidates, locals_, relevant, weights, stats, k
            )
            span.set(
                combinations_explored=stats.combinations_explored,
                feasible_found=len(plans),
            )
        return plans, best_infeasible

    def _lattice_walk(
        self,
        request: UserRequest,
        candidates: CandidateSets,
        locals_: Mapping[str, LocalSelection],
        relevant: Mapping[str, QoSProperty],
        weights: Mapping[str, float],
        stats: SelectionStatistics,
        k: int,
    ) -> Tuple[List[CompositionPlan], Optional[CompositionPlan]]:
        task = request.task
        names = candidates.activity_names()
        global_norm = self._build_global_normalizer(task, locals_, relevant)

        def state_priority(state: Tuple[int, ...]) -> float:
            return sum(
                locals_[name].levels[rank].centroid_utility
                for name, rank in zip(names, state)
            )

        start = tuple(0 for _ in names)
        heap: List[Tuple[float, Tuple[int, ...]]] = [(-state_priority(start), start)]
        visited = {start}
        plans: List[CompositionPlan] = []
        best_infeasible: Optional[CompositionPlan] = None
        seen_bindings: set = set()

        while heap and stats.combinations_explored < self.config.max_combinations:
            _, state = heapq.heappop(heap)
            stats.combinations_explored += 1
            assignment = {
                name: locals_[name].services[
                    locals_[name].levels[rank].representative
                ]
                for name, rank in zip(names, state)
            }
            aggregated, utility, feasible = evaluate_assignment(
                task, request, assignment, relevant, global_norm, self.approach
            )
            stats.utility_evaluations += 1
            if not feasible:
                repaired = self._repair(
                    request, names, state, locals_, relevant, global_norm, stats
                )
                if repaired is not None:
                    assignment, aggregated, utility = repaired
                    feasible = True
            if feasible:
                assignment, aggregated, utility = self._refine_utility(
                    request, names, state, locals_, assignment, aggregated,
                    utility, relevant, global_norm, stats,
                )
                binding_key = tuple(
                    sorted((n, s.service_id) for n, s in assignment.items())
                )
                if binding_key not in seen_bindings:
                    seen_bindings.add(binding_key)
                    plans.append(
                        self._make_plan_object(
                            request, names, state, locals_, assignment,
                            aggregated, utility, feasible=True,
                        )
                    )
                    if len(plans) >= k:
                        return plans, best_infeasible
            else:
                candidate_plan = self._make_plan_object(
                    request, names, state, locals_, assignment, aggregated,
                    utility, feasible=False,
                )
                if (
                    best_infeasible is None
                    or candidate_plan.utility > best_infeasible.utility
                ):
                    best_infeasible = candidate_plan
            for i in range(len(names)):
                ranks = list(state)
                if ranks[i] + 1 < len(locals_[names[i]].levels):
                    ranks[i] += 1
                    successor = tuple(ranks)
                    if successor not in visited:
                        visited.add(successor)
                        heapq.heappush(heap, (-state_priority(successor), successor))
        return plans, best_infeasible

    def local_selections(
        self, request: UserRequest, candidates: CandidateSets
    ) -> Dict[str, LocalSelection]:
        """Run only the local phase (used by the distributed variant, where
        each device computes its own activities' levels)."""
        stats = SelectionStatistics()
        relevant = self._relevant_properties(request)
        weights = request.normalised_weights(relevant)
        return {
            name: self._local_phase(name, services, relevant, weights, stats)
            for name, services in candidates.items()
        }

    # ------------------------------------------------------------------
    # local phase
    # ------------------------------------------------------------------
    def _local_selections(
        self,
        candidates: CandidateSets,
        relevant: Mapping[str, QoSProperty],
        weights: Mapping[str, float],
        stats: SelectionStatistics,
    ) -> Dict[str, LocalSelection]:
        """Local phase for every activity, consulting the cache when wired."""
        cache = self.cache
        if cache is None:
            return {
                name: self._local_phase(name, services, relevant, weights, stats)
                for name, services in candidates.items()
            }
        cache.begin(self._context_key(relevant, weights), weights)
        locals_: Dict[str, LocalSelection] = {}
        for name, services in candidates.items():
            fp = SelectionCache.fingerprint(services)
            payload = cache.lookup(name, fp)
            if payload is None:
                payload = self._local_phase(name, services, relevant, weights, stats)
                cache.store(name, fp, payload)
                stats.cache_misses += 1
                stats.activities_recomputed += 1
            else:
                stats.cache_hits += 1
            locals_[name] = payload
        if self.obs.enabled:
            self.obs.counter("selection_cache_hits_total").inc(stats.cache_hits)
            self.obs.counter("selection_cache_misses_total").inc(stats.cache_misses)
            self.obs.counter("selection_activities_recomputed_total").inc(
                stats.activities_recomputed
            )
        return locals_

    def _context_key(
        self,
        relevant: Mapping[str, QoSProperty],
        weights: Mapping[str, float],
    ) -> Tuple:
        """Everything, beyond the candidate pools, a local-phase result
        depends on.  Cached entries from a different context are unusable."""
        return (
            tuple(sorted(relevant)),
            tuple(sorted(weights.items())),
            self.approach.value,
            self.config.levels_per_activity,
            self.config.prune_dominated,
            self.config.seed,
        )

    def _relevant_properties(self, request: UserRequest) -> Dict[str, QoSProperty]:
        names = request.relevant_properties or tuple(self.properties)
        missing = [n for n in names if n not in self.properties]
        if missing:
            raise SelectionError(
                f"request refers to properties unknown to the selector: {missing}"
            )
        return {n: self.properties[n] for n in names}

    def _local_phase(
        self,
        activity_name: str,
        services: Sequence[ServiceDescription],
        relevant: Mapping[str, QoSProperty],
        weights: Mapping[str, float],
        stats: SelectionStatistics,
    ) -> LocalSelection:
        with self.obs.span(
            "qassa.cluster", activity=activity_name,
            candidates=len(services),
        ) as span:
            selection = self._local_phase_inner(
                activity_name, services, relevant, weights, stats
            )
            span.set(
                levels=len(selection.levels),
                kept=len(selection.services),
                pruned=len(selection.reserve),
                clustering_iterations=selection.clustering_iterations,
            )
        requested = min(self.config.levels_per_activity, len(selection.points))
        if len(selection.levels) < requested and self.obs.enabled:
            self.obs.counter("qassa_levels_collapsed_total").inc()
        return selection

    def _local_phase_inner(
        self,
        activity_name: str,
        services: Sequence[ServiceDescription],
        relevant: Mapping[str, QoSProperty],
        weights: Mapping[str, float],
        stats: SelectionStatistics,
    ) -> LocalSelection:
        vectors = [s.advertised_qos.restrict(relevant) for s in services]
        normalizer = Normalizer.from_vectors(vectors, relevant)
        extremes: Dict[str, Tuple[float, float]] = {}
        for pname, prop in relevant.items():
            values = [v[pname] for v in vectors if pname in v]
            if not values:
                raise SelectionError(
                    f"no candidate of activity {activity_name!r} advertises "
                    f"{pname!r}"
                )
            extremes[pname] = (
                prop.direction.best(values),
                prop.direction.worst(values),
            )

        kept_services = list(services)
        kept_vectors = vectors
        reserve: List[ServiceDescription] = []
        if self.config.prune_dominated and len(services) > 1:
            keep = self._non_dominated_indexes(kept_vectors)
            kept = set(keep)
            pruned = [
                (service_utility(vectors[i], normalizer, weights), services[i])
                for i in range(len(services))
                if i not in kept
            ]
            pruned.sort(key=lambda pair: -pair[0])
            reserve = [service for _, service in pruned]
            kept_services = [kept_services[i] for i in keep]
            kept_vectors = [kept_vectors[i] for i in keep]

        if self._use_kernels and kept_vectors:
            points, utilities = kernels.score_candidates(
                kept_vectors, normalizer, relevant, weights
            )
        else:
            points = [normalizer.normalise_vector(v) for v in kept_vectors]
            utilities = [
                service_utility(v, normalizer, weights) for v in kept_vectors
            ]
        stats.utility_evaluations += len(utilities)

        levels, km = build_qos_levels(
            points,
            utilities,
            weights,
            k=self.config.levels_per_activity,
            seed=self.config.seed,
        )
        stats.clustering_iterations += km.iterations
        return LocalSelection(
            activity_name=activity_name,
            services=kept_services,
            points=points,
            utilities=utilities,
            levels=levels,
            normalizer=normalizer,
            clustering_iterations=km.iterations,
            reserve=reserve,
            extremes=extremes,
        )

    def _build_global_normalizer(
        self,
        task,
        locals_: Mapping[str, LocalSelection],
        relevant: Mapping[str, QoSProperty],
    ) -> Normalizer:
        """Global normaliser from the per-activity extremes the local phase
        recorded — equivalent to
        :func:`~repro.composition.selection.make_global_normalizer` but
        reusable from cached local selections without rescanning candidates.
        """
        if self._use_kernels and relevant:
            bounds = kernels.batched_aggregation_bounds(
                task,
                relevant,
                {name: sel.extremes for name, sel in locals_.items()},
                self.approach,
            )
            spans = {
                pname: (min(best, worst), max(best, worst))
                for pname, (best, worst) in bounds.items()
            }
            return Normalizer(dict(relevant), spans)
        spans: Dict[str, Tuple[float, float]] = {}
        for pname, prop in relevant.items():
            per_activity = {
                name: sel.extremes[pname] for name, sel in locals_.items()
            }
            best, worst = aggregation_bounds(task, prop, per_activity, self.approach)
            spans[pname] = (min(best, worst), max(best, worst))
        return Normalizer(dict(relevant), spans)

    @staticmethod
    def _non_dominated_indexes(vectors: Sequence[QoSVector]) -> List[int]:
        """Indexes of Pareto-non-dominated vectors (O(n²), n is small)."""
        keep: List[int] = []
        for i, v in enumerate(vectors):
            if not any(
                j != i and vectors[j].dominates(v) for j in range(len(vectors))
            ):
                keep.append(i)
        return keep or list(range(len(vectors)))

    # ------------------------------------------------------------------
    # global phase
    # ------------------------------------------------------------------
    def _global_phase(
        self,
        request: UserRequest,
        candidates: CandidateSets,
        locals_: Mapping[str, LocalSelection],
        relevant: Mapping[str, QoSProperty],
        weights: Mapping[str, float],
        stats: SelectionStatistics,
        best_effort: bool,
    ) -> CompositionPlan:
        """The single-answer global phase: walk the lattice collecting a
        small *beam* of feasible compositions (``config.feasible_beam``)
        and return the best by utility — the paper's "several compositions
        providing different levels of QoS", reduced to its champion."""
        plans, best_infeasible = self._global_phase_multi(
            request, candidates, locals_, relevant, weights, stats,
            k=max(self.config.feasible_beam, 1),
        )
        if plans:
            return max(plans, key=lambda p: p.utility)
        if best_effort and best_infeasible is not None:
            return best_infeasible
        raise SelectionError(
            "no service composition satisfies the global QoS constraints "
            f"(explored {stats.combinations_explored} level combinations)"
        )

    def _refine_utility(
        self,
        request: UserRequest,
        names: Sequence[str],
        state: Tuple[int, ...],
        locals_: Mapping[str, LocalSelection],
        assignment: Dict[str, ServiceDescription],
        aggregated: QoSVector,
        utility: float,
        relevant: Mapping[str, QoSProperty],
        global_norm: Normalizer,
        stats: SelectionStatistics,
    ) -> Tuple[Dict[str, ServiceDescription], QoSVector, float]:
        """Coordinate-ascent polish of a feasible state (one sweep).

        Local SAW utility (which picked the level representatives) and
        *composition* utility (min-max over aggregated bounds) can disagree,
        especially on small candidate sets.  For each activity, the top
        ``config.refine_candidates`` kept services (across all levels,
        best-local-utility first) are tried in place; a swap is kept when it
        improves composition utility without breaking feasibility.  Cost is
        O(n · refine_candidates) aggregations — negligible next to the
        lattice search.
        """
        task = request.task
        best = (dict(assignment), aggregated, utility)
        for name, rank in zip(names, state):
            sel = locals_[name]
            ordered = sorted(
                range(len(sel.services)), key=lambda i: -sel.utilities[i]
            )[: self.config.refine_candidates]
            current_best = best[2]
            for idx in ordered:
                candidate = sel.services[idx]
                if candidate == best[0][name]:
                    continue
                trial = dict(best[0])
                trial[name] = candidate
                trial_aggregated, trial_utility, trial_feasible = (
                    evaluate_assignment(
                        task, request, trial, relevant, global_norm,
                        self.approach,
                    )
                )
                stats.utility_evaluations += 1
                if trial_feasible and trial_utility > current_best:
                    best = (trial, trial_aggregated, trial_utility)
                    current_best = trial_utility
        return best

    def _repair(
        self,
        request: UserRequest,
        names: Sequence[str],
        state: Tuple[int, ...],
        locals_: Mapping[str, LocalSelection],
        relevant: Mapping[str, QoSProperty],
        global_norm: Normalizer,
        stats: SelectionStatistics,
    ) -> Optional[Tuple[Dict[str, ServiceDescription], QoSVector, float]]:
        """Try to make a level combination feasible by swapping members.

        Within the state's chosen clusters, repeatedly rebind the activity
        whose swap most improves the most-violated constraint.  Bounded by
        ``config.repair_passes`` full sweeps.
        """
        task = request.task
        member_lists: Dict[str, List[int]] = {
            name: locals_[name].levels[rank].member_indexes
            for name, rank in zip(names, state)
        }
        chosen: Dict[str, int] = {
            name: locals_[name].levels[rank].representative
            for name, rank in zip(names, state)
        }

        def current_assignment() -> Dict[str, ServiceDescription]:
            return {
                name: locals_[name].services[idx] for name, idx in chosen.items()
            }

        for _ in range(self.config.repair_passes):
            assignment = current_assignment()
            aggregated, utility, feasible = evaluate_assignment(
                task, request, assignment, relevant, global_norm, self.approach
            )
            stats.utility_evaluations += 1
            if feasible:
                return assignment, aggregated, utility

            violations = request.violations(aggregated)
            if not violations:
                return None
            # Most violated constraint (largest negative slack magnitude).
            worst_desc = min(violations, key=lambda k: violations[k])
            prop_name = worst_desc.split()[0]
            if prop_name not in relevant:
                return None
            prop = relevant[prop_name]

            improved = False
            for name in names:
                sel = locals_[name]
                current = sel.services[chosen[name]].advertised_qos.get(prop_name)
                best_idx = chosen[name]
                best_value = current
                for idx in member_lists[name]:
                    value = sel.services[idx].advertised_qos.get(prop_name)
                    if value is None:
                        continue
                    if best_value is None or prop.better(value, best_value):
                        best_value, best_idx = value, idx
                if best_idx != chosen[name]:
                    chosen[name] = best_idx
                    improved = True
            if not improved:
                return None

        assignment = current_assignment()
        aggregated, utility, feasible = evaluate_assignment(
            task, request, assignment, relevant, global_norm, self.approach
        )
        stats.utility_evaluations += 1
        if feasible:
            return assignment, aggregated, utility
        return None

    # ------------------------------------------------------------------
    def _build_plan(
        self,
        request: UserRequest,
        names: Sequence[str],
        state: Tuple[int, ...],
        locals_: Mapping[str, LocalSelection],
        assignment: Mapping[str, ServiceDescription],
        aggregated: QoSVector,
        utility: float,
        relevant: Mapping[str, QoSProperty],
        stats: SelectionStatistics,
    ) -> CompositionPlan:
        return self._make_plan_object(
            request, names, state, locals_, assignment, aggregated, utility,
            feasible=True,
        )

    def _make_plan_object(
        self,
        request: UserRequest,
        names: Sequence[str],
        state: Tuple[int, ...],
        locals_: Mapping[str, LocalSelection],
        assignment: Mapping[str, ServiceDescription],
        aggregated: QoSVector,
        utility: float,
        feasible: bool,
    ) -> CompositionPlan:
        selections: Dict[str, SelectedActivity] = {}
        for name, rank in zip(names, state):
            sel = locals_[name]
            primary = assignment[name]
            ranked = [primary]
            # Alternates come from the chosen level first, then from the
            # remaining levels in rank order, so each activity retains
            # several services for dynamic binding / substitution (§I.5)
            # even when its winning cluster is small.
            level_order = [sel.levels[rank]] + [
                lv for lv in sel.levels if lv.rank != rank
            ]
            quota = 1 + self.config.alternates_kept
            for level in level_order:
                for idx in level.member_indexes:
                    if len(ranked) >= quota:
                        break
                    service = sel.services[idx]
                    if service != primary and service not in ranked:
                        ranked.append(service)
                if len(ranked) >= quota:
                    break
            # Pareto-pruned candidates back-fill the quota: strictly worse
            # than their dominators, but a dominated substitute beats no
            # substitute when providers churn.
            for service in sel.reserve:
                if len(ranked) >= quota:
                    break
                if service != primary and service not in ranked:
                    ranked.append(service)
            selections[name] = SelectedActivity(name, ranked)
        return CompositionPlan(
            task=request.task,
            request=request,
            selections=selections,
            aggregated_qos=aggregated,
            utility=utility,
            feasible=feasible,
            approach=self.approach,
        )
