"""Distributed QASSA for ad hoc pervasive environments (§IV.4, Fig. VI.12).

In an infrastructure-less environment (the open-air-market scenario) there
is no central platform: services live on the vendors' devices and the user's
device coordinates selection.  QASSA's two-phase design was chosen precisely
because it distributes naturally:

* the **local phase** runs *on each provider device*, over the candidates it
  hosts — devices compute their own QoS levels concurrently and send only
  compact level summaries (centroids + representatives) to the coordinator;
* the **global phase** runs on the coordinator over the received summaries,
  exactly as in the centralized algorithm.

The execution-time decomposition the paper plots (Fig. VI.12a/b) is
reproduced here on a simulated ad hoc network: wall-clock of the local phase
is the *maximum* over devices (they run concurrently) plus the summary
transmission time; the global phase adds the coordinator's computation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SelectionError
from repro.qos.properties import QoSProperty
from repro.services.description import ServiceDescription
from repro.composition.aggregation import AggregationApproach
from repro.composition.qassa import QASSA, QassaConfig
from repro.composition.request import UserRequest
from repro.composition.selection import CandidateSets, CompositionPlan


@dataclass(frozen=True)
class AdHocLink:
    """A crude wireless-link model: per-message latency + throughput.

    ``transfer_seconds`` estimates the time to ship ``payload_bytes`` from a
    provider device to the coordinator over one hop.
    """

    latency_seconds: float = 0.004
    bandwidth_bytes_per_second: float = 250_000.0

    def transfer_seconds(self, payload_bytes: int) -> float:
        return self.latency_seconds + payload_bytes / self.bandwidth_bytes_per_second


#: Rough wire size of one level summary (centroid floats + ids), used to
#: estimate transmission times without serialising anything.
_BYTES_PER_LEVEL = 96
_BYTES_PER_SERVICE_REF = 40


@dataclass
class NodeAssignment:
    """Which activities' candidate sets a provider device hosts."""

    node_id: str
    activity_names: List[str]


@dataclass
class DistributedTiming:
    """Phase decomposition of one distributed run (Fig. VI.12 series)."""

    local_phase_seconds: float = 0.0
    per_node_seconds: Dict[str, float] = field(default_factory=dict)
    transmission_seconds: float = 0.0
    global_phase_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return (
            self.local_phase_seconds
            + self.transmission_seconds
            + self.global_phase_seconds
        )


class DistributedQASSA:
    """QASSA split across provider devices and a coordinator.

    ``nodes`` partitions the task's activities over devices; activities not
    mentioned default to the coordinator itself.  The underlying phases are
    the centralized implementations — what changes is *where* they (are
    modelled to) run and the resulting wall-clock accounting.
    """

    def __init__(
        self,
        properties: Mapping[str, QoSProperty],
        approach: AggregationApproach = AggregationApproach.PESSIMISTIC,
        config: QassaConfig = QassaConfig(),
        link: AdHocLink = AdHocLink(),
    ) -> None:
        self.qassa = QASSA(properties, approach, config)
        self.link = link

    def select(
        self,
        request: UserRequest,
        candidates: CandidateSets,
        nodes: Sequence[NodeAssignment],
        best_effort: bool = False,
    ) -> Tuple[CompositionPlan, DistributedTiming]:
        """Run the distributed protocol; returns (plan, phase timings)."""
        self._check_partition(candidates, nodes)
        timing = DistributedTiming()

        # --- local phase: one sub-run per device, concurrent in the field --
        locals_ = {}
        for node in nodes:
            started = time.perf_counter()
            node_locals = {
                name: sel
                for name, sel in self.qassa.local_selections(
                    request,
                    _subset(candidates, request, node.activity_names),
                ).items()
            }
            elapsed = time.perf_counter() - started
            timing.per_node_seconds[node.node_id] = elapsed
            locals_.update(node_locals)

            payload = sum(
                _BYTES_PER_LEVEL * len(sel.levels)
                + _BYTES_PER_SERVICE_REF * len(sel.services)
                for sel in node_locals.values()
            )
            timing.transmission_seconds = max(
                timing.transmission_seconds, self.link.transfer_seconds(payload)
            )
        # Devices compute concurrently: the phase lasts as long as the
        # slowest device.
        timing.local_phase_seconds = max(
            timing.per_node_seconds.values(), default=0.0
        )

        # --- global phase: coordinator-side assembly ------------------------
        relevant = self.qassa._relevant_properties(request)
        weights = request.normalised_weights(relevant)
        started = time.perf_counter()
        from repro.composition.selection import SelectionStatistics

        stats = SelectionStatistics(search_space=candidates.search_space())
        plan = self.qassa._global_phase(
            request, candidates, locals_, relevant, weights, stats, best_effort
        )
        timing.global_phase_seconds = time.perf_counter() - started

        stats.elapsed_seconds = timing.total_seconds
        stats.extra.update(
            local_phase_seconds=timing.local_phase_seconds,
            transmission_seconds=timing.transmission_seconds,
            global_phase_seconds=timing.global_phase_seconds,
            nodes=float(len(nodes)),
        )
        plan.statistics = stats
        return plan, timing

    @staticmethod
    def _check_partition(
        candidates: CandidateSets, nodes: Sequence[NodeAssignment]
    ) -> None:
        covered: List[str] = []
        for node in nodes:
            covered.extend(node.activity_names)
        duplicates = {n for n in covered if covered.count(n) > 1}
        if duplicates:
            raise SelectionError(
                f"activities assigned to several nodes: {sorted(duplicates)}"
            )
        missing = set(candidates.activity_names()) - set(covered)
        if missing:
            raise SelectionError(
                f"activities assigned to no node: {sorted(missing)}"
            )


def _subset(
    candidates: CandidateSets, request: UserRequest, names: Sequence[str]
) -> CandidateSets:
    """A CandidateSets view narrowed to some activities.

    CandidateSets validates against the full task, so we bypass __init__ and
    fill the private mapping directly — the narrowed view is only consumed
    by the local phase, which never touches the task structure.
    """
    view = CandidateSets.__new__(CandidateSets)
    view.task = candidates.task
    view._sets = {name: candidates[name] for name in names}
    return view


def nodes_from_environment(
    candidates: CandidateSets,
    environment,
    coordinator_id: str = "coordinator",
) -> List[NodeAssignment]:
    """Partition a task's activities over the environment's devices.

    Each activity is assigned to the device hosting the *plurality* of its
    candidate services (that device already knows those services' QoS, so it
    is the natural place to run the activity's local phase).  Activities
    whose candidates have no identifiable host fall to the coordinator.
    """
    assignments: Dict[str, List[str]] = {}
    for name in candidates.activity_names():
        tally: Dict[str, int] = {}
        for service in candidates[name]:
            host = service.host_device
            if host is None:
                continue
            device = getattr(environment, "device", None)
            tally[host] = tally.get(host, 0) + 1
        if tally:
            winner = max(sorted(tally), key=lambda h: tally[h])
        else:
            winner = coordinator_id
        assignments.setdefault(winner, []).append(name)
    return [
        NodeAssignment(node_id, names)
        for node_id, names in sorted(assignments.items())
    ]


def round_robin_nodes(
    activity_names: Sequence[str], node_count: int
) -> List[NodeAssignment]:
    """Spread a task's activities over N devices round-robin (experiment
    helper for Fig. VI.12)."""
    if node_count < 1:
        raise SelectionError("node_count must be >= 1")
    nodes = [NodeAssignment(f"node-{i}", []) for i in range(node_count)]
    for i, name in enumerate(activity_names):
        nodes[i % node_count].activity_names.append(name)
    return [n for n in nodes if n.activity_names]
