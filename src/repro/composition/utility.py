"""SAW utility computation (§IV.2.1, the ``f_{s_{i,k}}`` and ``F_{C_v}``
functions).

QASSA and the baselines all score services and compositions with the Simple
Additive Weighting (SAW) technique:

1. each property value is min-max normalised against the population's
   extremes, oriented so 1 is always *good* (direction-aware);
2. normalised dimensions are combined with the user's preference weights.

Two normaliser scopes exist:

* a **local** normaliser per activity, built from that activity's candidate
  set — scores individual services (local selection phase);
* a **global** normaliser, built from the aggregation bounds of the whole
  task — scores aggregated composition QoS (global phase, optimality
  measurements).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import QoSModelError
from repro.qos.properties import Direction, QoSProperty
from repro.qos.values import QoSVector


@dataclass(frozen=True)
class _Span:
    low: float
    high: float

    @property
    def width(self) -> float:
        return self.high - self.low


class Normalizer:
    """Direction-aware min-max normalisation over a property population."""

    def __init__(
        self,
        properties: Mapping[str, QoSProperty],
        spans: Mapping[str, Tuple[float, float]],
    ) -> None:
        self._properties = dict(properties)
        self._spans: Dict[str, _Span] = {}
        for name, (low, high) in spans.items():
            if high < low:
                raise QoSModelError(
                    f"normaliser span for {name!r} is inverted: ({low}, {high})"
                )
            self._spans[name] = _Span(low, high)

    @classmethod
    def from_vectors(
        cls,
        vectors: Iterable[QoSVector],
        properties: Mapping[str, QoSProperty],
    ) -> "Normalizer":
        """Build spans from an observed population (candidate set)."""
        lows: Dict[str, float] = {}
        highs: Dict[str, float] = {}
        for vector in vectors:
            for name in properties:
                if name not in vector:
                    continue
                value = vector[name]
                lows[name] = min(lows.get(name, value), value)
                highs[name] = max(highs.get(name, value), value)
        spans = {
            name: (lows.get(name, properties[name].value_range[0]),
                   highs.get(name, properties[name].value_range[1]))
            for name in properties
        }
        return cls(properties, spans)

    def span(self, name: str) -> Tuple[float, float]:
        s = self._spans[name]
        return (s.low, s.high)

    def scales(self) -> Dict[str, float]:
        """Per-property spans (max - min), for Euclidean distances."""
        return {name: s.width for name, s in self._spans.items()}

    def normalise(self, name: str, value: float) -> float:
        """Map a raw value to [0, 1] with 1 = best.

        Values outside the span are clipped; a degenerate span (all
        candidates equal) normalises to 1.0 since no candidate is worse than
        another on that dimension.
        """
        span = self._spans.get(name)
        prop = self._properties.get(name)
        if span is None or prop is None:
            raise QoSModelError(f"no normalisation span for property {name!r}")
        if span.width <= 0:
            return 1.0
        if prop.direction is Direction.NEGATIVE:
            score = (span.high - value) / span.width
        else:
            score = (value - span.low) / span.width
        return min(max(score, 0.0), 1.0)

    def normalise_vector(self, vector: QoSVector) -> Dict[str, float]:
        return {
            name: self.normalise(name, vector[name])
            for name in self._spans
            if name in vector
        }


def service_utility(
    vector: QoSVector,
    normalizer: Normalizer,
    weights: Mapping[str, float],
) -> float:
    """SAW utility ``f_s`` of one service's QoS vector in [0, 1].

    Properties missing from the vector score 0 (a service that does not
    advertise a property the user cares about gives no guarantee).
    """
    total = 0.0
    for name, weight in weights.items():
        value = vector.get(name)
        if value is None:
            continue
        total += weight * normalizer.normalise(name, value)
    return total


def composition_utility(
    aggregated: QoSVector,
    normalizer: Normalizer,
    weights: Mapping[str, float],
) -> float:
    """SAW utility ``F_Cv`` of an aggregated composition QoS vector.

    Identical mechanics to :func:`service_utility`; kept separate so call
    sites document whether they score a service or a composition, and so the
    two can diverge (e.g. penalty terms) without touching callers.
    """
    return service_utility(aggregated, normalizer, weights)
