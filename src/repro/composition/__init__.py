"""QoS-aware service composition (S4-S7) — the paper's core contribution.

Modules:

* :mod:`repro.composition.task` — the composition model: abstract activities
  structured by composition patterns (sequence, parallel, conditional, loop).
* :mod:`repro.composition.request` — user requests: a task, global QoS
  constraints and preference weights.
* :mod:`repro.composition.aggregation` — QoS aggregation over patterns
  (Table IV.1) with the pessimistic/optimistic/mean-value approaches.
* :mod:`repro.composition.utility` — SAW utility normalisation for services
  and compositions.
* :mod:`repro.composition.clustering` — the K-means machinery behind QASSA's
  QoS levels and classes.
* :mod:`repro.composition.selection` — shared result types and the
  feasibility checker.
* :mod:`repro.composition.qassa` — **QASSA**, the clustering-based heuristic
  for QoS-aware selection under global constraints (§IV.3).
* :mod:`repro.composition.baselines` — exhaustive, greedy, random and
  genetic baselines used by the optimality experiments.
* :mod:`repro.composition.exact` — the exact branch-and-bound selection
  oracle: ExhaustiveSelection's optimum (and tie-break) at scales where
  enumeration is intractable.
* :mod:`repro.composition.distributed` — the distributed variant of QASSA
  for ad hoc (infrastructure-less) environments (§IV.4, Fig. VI.12).
"""

from repro.composition.aggregation import (
    AggregationApproach,
    aggregate_composition,
    aggregate_values,
)
from repro.composition.baselines import (
    ExhaustiveSelection,
    GeneticSelection,
    GreedySelection,
    RandomSelection,
)
from repro.composition.distributed import DistributedQASSA
from repro.composition.exact import ExactSelection
from repro.composition.qassa import QASSA, QassaConfig
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.selection import (
    CandidateSets,
    CompositionPlan,
    SelectedActivity,
    SelectionStatistics,
)
from repro.composition.selection_cache import SelectionCache
from repro.composition.task import (
    Activity,
    Conditional,
    Loop,
    Parallel,
    Sequence,
    Task,
)
from repro.composition.utility import Normalizer, composition_utility, service_utility

__all__ = [
    "Activity",
    "AggregationApproach",
    "CandidateSets",
    "CompositionPlan",
    "Conditional",
    "DistributedQASSA",
    "ExactSelection",
    "ExhaustiveSelection",
    "GeneticSelection",
    "GlobalConstraint",
    "GreedySelection",
    "Loop",
    "Normalizer",
    "Parallel",
    "QASSA",
    "QassaConfig",
    "RandomSelection",
    "SelectedActivity",
    "SelectionCache",
    "SelectionStatistics",
    "Sequence",
    "Task",
    "UserRequest",
    "aggregate_composition",
    "aggregate_values",
    "composition_utility",
    "service_utility",
]
