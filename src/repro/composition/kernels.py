"""Vectorized QASSA hot-path kernels (numpy matrix formulation).

Profiling the selection pipeline shows two pure-Python hot loops: scoring
every candidate of an activity (normalise each QoS vector, weight, sum —
the local phase's SAW pass) and computing per-property aggregation bounds
for the global normaliser (two pattern-tree walks per property).  This
module re-expresses both as numpy array kernels in the classic
matrix-formulation idiom: candidates become an ``(N, P)`` value matrix
scored in one normalise-weight-sum pass, and the bounds tree is walked
*once* carrying ``(2, P)`` best/worst arrays with per-``AggregationKind``
column masks instead of once per property.

**Bit-identity contract** — the kernels are drop-in replacements gated by
:attr:`~repro.composition.qassa.QassaConfig.vectorized`, so they must
produce *byte-identical* plans to the scalar path (the differential
fuzzing harness enforces this).  Two rules make that possible:

* only **elementwise** array operations are used — IEEE-754 guarantees an
  elementwise ``+``/``-``/``*``/``/`` matches the identical scalar
  operation bit for bit;
* reductions are written as **explicit left folds in the scalar code's
  iteration order** — never ``np.sum``/``np.dot``, whose pairwise
  summation associates differently and drifts in the last ulp.

numpy is an optional dependency (the ``[perf]`` extra): when it is absent
:data:`HAVE_NUMPY` is ``False`` and callers fall back to the scalar path.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import AggregationError
from repro.qos.properties import AggregationKind, Direction, QoSProperty
from repro.qos.values import QoSVector
from repro.composition.aggregation import AggregationApproach, _is_time_like
from repro.composition.task import Conditional, Leaf, Loop, Node, Parallel, Sequence as SeqNode
from repro.composition.utility import Normalizer

try:  # pragma: no cover - exercised via the no-numpy CI job
    import numpy as _np
except Exception:  # noqa: BLE001 - any import failure means "no numpy"
    _np = None

#: Whether the vectorized kernels are usable in this interpreter.
HAVE_NUMPY = _np is not None


def score_candidates(
    vectors: Sequence[QoSVector],
    normalizer: Normalizer,
    relevant: Mapping[str, QoSProperty],
    weights: Mapping[str, float],
) -> Tuple[List[Dict[str, float]], List[float]]:
    """Normalise and SAW-score all candidates of one activity at once.

    Returns ``(points, utilities)`` exactly as the scalar pass produces
    them: ``points[i]`` is ``normalizer.normalise_vector(vectors[i])`` and
    ``utilities[i]`` is ``service_utility(vectors[i], normalizer,
    weights)``, with every value converted back to a builtin ``float`` so
    nothing downstream ever sees a numpy scalar.
    """
    assert _np is not None, "score_candidates requires numpy"
    names = list(relevant)
    n, p = len(vectors), len(names)
    values = _np.zeros((n, p), dtype=_np.float64)
    mask = _np.zeros((n, p), dtype=bool)
    for i, vector in enumerate(vectors):
        for j, name in enumerate(names):
            value = vector.get(name)
            if value is not None:
                values[i, j] = value
                mask[i, j] = True

    # Per-property normalised scores: elementwise (value - low) / width or
    # (high - value) / width, clipped to [0, 1]; a degenerate span scores
    # 1.0 — the exact arithmetic of Normalizer.normalise, per element.
    scores = _np.empty((n, p), dtype=_np.float64)
    for j, name in enumerate(names):
        low, high = normalizer.span(name)
        width = high - low
        if width <= 0:
            scores[:, j] = 1.0
            continue
        if relevant[name].direction is Direction.NEGATIVE:
            raw = (high - values[:, j]) / width
        else:
            raw = (values[:, j] - low) / width
        scores[:, j] = _np.minimum(_np.maximum(raw, 0.0), 1.0)

    # SAW utilities, accumulated in weights order (the scalar fold order);
    # a candidate that does not advertise a property contributes +0.0,
    # which is bit-identical to the scalar code skipping the term.
    column = {name: j for j, name in enumerate(names)}
    utilities = _np.zeros(n, dtype=_np.float64)
    for name, weight in weights.items():
        j = column.get(name)
        if j is None:
            continue
        utilities = utilities + _np.where(
            mask[:, j], weight * scores[:, j], 0.0
        )

    points: List[Dict[str, float]] = [
        {
            name: float(scores[i, j])
            for j, name in enumerate(names)
            if mask[i, j]
        }
        for i in range(n)
    ]
    return points, [float(u) for u in utilities]


def batched_aggregation_bounds(
    task,
    relevant: Mapping[str, QoSProperty],
    per_activity_extremes: Mapping[str, Mapping[str, Tuple[float, float]]],
    approach: AggregationApproach,
) -> Dict[str, Tuple[float, float]]:
    """(best, worst) achievable aggregates for *all* properties in one walk.

    Equivalent to calling
    :func:`~repro.composition.aggregation.aggregation_bounds` once per
    property, but the pattern tree is walked a single time carrying a
    ``(2, P)`` array (row 0: the walk fed per-activity best values, row 1:
    fed worst values) and combining children with per-kind column masks.
    Fold orders match the scalar combinators, so results are bit-identical.
    """
    assert _np is not None, "batched_aggregation_bounds requires numpy"
    names = list(relevant)
    props = [relevant[name] for name in names]
    additive = _np.array(
        [p.aggregation is AggregationKind.ADDITIVE for p in props]
    )
    multiplicative = _np.array(
        [p.aggregation is AggregationKind.MULTIPLICATIVE for p in props]
    )
    minimum = _np.array([p.aggregation is AggregationKind.MIN for p in props])
    maximum = _np.array([p.aggregation is AggregationKind.MAX for p in props])
    average = _np.array(
        [p.aggregation is AggregationKind.AVERAGE for p in props]
    )
    known = additive | multiplicative | minimum | maximum | average
    if not bool(known.all()):
        unknown = props[int(_np.argmin(known))]
        raise AggregationError(
            f"unknown aggregation kind: {unknown.aggregation!r}"
        )
    time_like = _np.array([_is_time_like(p) for p in props])
    negative = _np.array(
        [p.direction is Direction.NEGATIVE for p in props]
    )

    def folds(children: List["_np.ndarray"]):
        """Left folds over child arrays: (sum, prod, min, max)."""
        acc_sum, acc_prod = children[0], children[0]
        acc_min, acc_max = children[0], children[0]
        for child in children[1:]:
            acc_sum = acc_sum + child
            acc_prod = acc_prod * child
            acc_min = _np.minimum(acc_min, child)
            acc_max = _np.maximum(acc_max, child)
        return acc_sum, acc_prod, acc_min, acc_max

    def by_kind(acc_sum, acc_prod, acc_min, acc_max, acc_avg, add_branch):
        return _np.where(
            additive, add_branch,
            _np.where(
                multiplicative, acc_prod,
                _np.where(
                    minimum, acc_min,
                    _np.where(maximum, acc_max, acc_avg),
                ),
            ),
        )

    def walk(node: Node) -> "_np.ndarray":
        if isinstance(node, Leaf):
            name = node.activity.name
            try:
                extremes = per_activity_extremes[name]
            except KeyError:
                raise AggregationError(
                    f"no value of {props[0].name!r} for activity {name!r}"
                ) from None
            return _np.array(
                [
                    [extremes[pname][0] for pname in names],
                    [extremes[pname][1] for pname in names],
                ],
                dtype=_np.float64,
            )
        if isinstance(node, SeqNode):
            children = [walk(child) for child in node.members]
            acc_sum, acc_prod, acc_min, acc_max = folds(children)
            acc_avg = acc_sum / len(children)
            return by_kind(
                acc_sum, acc_prod, acc_min, acc_max, acc_avg, acc_sum
            )
        if isinstance(node, Parallel):
            children = [walk(child) for child in node.branches]
            acc_sum, acc_prod, acc_min, acc_max = folds(children)
            acc_avg = acc_sum / len(children)
            # Additive durations overlap (slowest branch); additive
            # resources are consumed by every branch.
            add_branch = _np.where(time_like, acc_max, acc_sum)
            return by_kind(
                acc_sum, acc_prod, acc_min, acc_max, acc_avg, add_branch
            )
        if isinstance(node, Conditional):
            children = [walk(child) for child in node.branches]
            if approach is AggregationApproach.MEAN:
                probabilities = node.branch_probabilities()
                if len(probabilities) != len(children):
                    raise AggregationError(
                        f"conditional mean-value aggregation of "
                        f"{props[0].name!r} got {len(children)} branch "
                        f"values but {len(probabilities)} probabilities"
                    )
                total = sum(probabilities)
                if abs(total - 1.0) > 1e-6:
                    raise AggregationError(
                        f"conditional branch probabilities sum to "
                        f"{total:g}, expected 1 (mean-value aggregation "
                        f"of {props[0].name!r})"
                    )
                acc = _np.zeros_like(children[0])
                for probability, child in zip(probabilities, children):
                    acc = acc + probability * child
                return acc
            _, _, acc_min, acc_max = folds(children)
            if approach is AggregationApproach.PESSIMISTIC:
                return _np.where(negative, acc_max, acc_min)
            return _np.where(negative, acc_min, acc_max)
        if isinstance(node, Loop):
            body = walk(node.body)

            def at(n: float) -> "_np.ndarray":
                # Python's ``**`` (libm pow), not ``np.power``: numpy's
                # SIMD pow drifts a last ulp from libm on some inputs,
                # which would break bit-identity with the scalar path.
                # Only multiplicative columns are powered, exactly like
                # the scalar per-property dispatch.
                powered = body.copy()
                for j in range(len(props)):
                    if multiplicative[j]:
                        powered[0, j] = float(body[0, j]) ** n
                        powered[1, j] = float(body[1, j]) ** n
                return by_kind(body, powered, body, body, body, n * body)

            if approach is AggregationApproach.MEAN:
                return at(node.mean_iterations())
            lo, hi = at(1.0), at(float(node.max_iterations))
            if approach is AggregationApproach.PESSIMISTIC:
                return _np.where(
                    negative, _np.maximum(lo, hi), _np.minimum(lo, hi)
                )
            return _np.where(
                negative, _np.minimum(lo, hi), _np.maximum(lo, hi)
            )
        raise AggregationError(f"unknown pattern node: {type(node).__name__}")

    bounds = walk(task.root)
    return {
        name: (float(bounds[0, j]), float(bounds[1, j]))
        for j, name in enumerate(names)
    }
