"""QoS aggregation over composition patterns (Table IV.1, §IV.2.3).

Given per-activity QoS values, aggregation computes the QoS of the whole
composition.  The formula depends on two things:

1. the property's :class:`~repro.qos.properties.AggregationKind` (additive,
   multiplicative, min, max, average), and
2. the pattern (sequence, parallel, conditional, loop).

For run-time-*unknown* patterns (conditional branches, loop iteration
counts) the paper distinguishes three **aggregation approaches**
(§VI.3.2.1, Figs. VI.7-8):

* **pessimistic** — assume the worst branch / the maximum iteration count:
  the aggregate is a guaranteed bound;
* **optimistic** — assume the best branch / a single iteration;
* **mean-value** — expectation under branch probabilities / the expected
  iteration count.

Reference formulas (sequence of k values v_1..v_k):

==============  ==========  ============  ==========  ==========
kind            sequence    parallel      conditional  loop (n iter)
==============  ==========  ============  ==========  ==========
additive-time   Σ v_i       max v_i       choose       n·v
additive-cost   Σ v_i       Σ v_i         choose       n·v
multiplicative  Π v_i       Π v_i         choose       v^n
min             min v_i     min v_i       choose       v
max             max v_i     max v_i       choose       v
average         mean v_i    mean v_i      choose       v
==============  ==========  ============  ==========  ==========

"additive-time" vs "additive-cost": durations overlap under a parallel
pattern (the composition waits for the slowest branch) whereas resources
(money, energy) are consumed by *every* branch.  The distinction is made on
the property's unit dimension.
"""

from __future__ import annotations

import enum
import math
from typing import Callable, Dict, List, Mapping, Sequence as Seq

from repro.errors import AggregationError
from repro.qos.properties import AggregationKind, QoSProperty
from repro.qos.values import QoSVector
from repro.composition.task import (
    Conditional,
    Leaf,
    Loop,
    Node,
    Parallel,
    Sequence,
    Task,
)


class AggregationApproach(enum.Enum):
    """How run-time-unknown patterns are resolved (§VI.3.2.1)."""

    PESSIMISTIC = "pessimistic"
    OPTIMISTIC = "optimistic"
    MEAN = "mean"


def _is_time_like(prop: QoSProperty) -> bool:
    return prop.unit.dimension == "time"


def _sequence(kind: AggregationKind, values: Seq[float]) -> float:
    if kind is AggregationKind.ADDITIVE:
        return sum(values)
    if kind is AggregationKind.MULTIPLICATIVE:
        return math.prod(values)
    if kind is AggregationKind.MIN:
        return min(values)
    if kind is AggregationKind.MAX:
        return max(values)
    if kind is AggregationKind.AVERAGE:
        return sum(values) / len(values)
    raise AggregationError(f"unknown aggregation kind: {kind!r}")


def _parallel(prop: QoSProperty, values: Seq[float]) -> float:
    kind = prop.aggregation
    if kind is AggregationKind.ADDITIVE:
        return max(values) if _is_time_like(prop) else sum(values)
    # All remaining kinds behave as in a sequence: availability of an
    # AND-join still multiplies, throughput is still the bottleneck...
    return _sequence(kind, values)


def _conditional(
    prop: QoSProperty,
    branch_values: Seq[float],
    probabilities: Seq[float],
    approach: AggregationApproach,
) -> float:
    if approach is AggregationApproach.PESSIMISTIC:
        return prop.direction.worst(branch_values)
    if approach is AggregationApproach.OPTIMISTIC:
        return prop.direction.best(branch_values)
    if len(probabilities) != len(branch_values):
        raise AggregationError(
            f"conditional mean-value aggregation of {prop.name!r} got "
            f"{len(branch_values)} branch values but "
            f"{len(probabilities)} probabilities"
        )
    total = sum(probabilities)
    if abs(total - 1.0) > 1e-6:
        raise AggregationError(
            f"conditional branch probabilities sum to {total:g}, expected 1 "
            f"(mean-value aggregation of {prop.name!r})"
        )
    return sum(p * v for p, v in zip(probabilities, branch_values))


def _loop(
    prop: QoSProperty,
    body_value: float,
    max_iterations: int,
    mean_iterations: float,
    approach: AggregationApproach,
) -> float:
    kind = prop.aggregation
    if kind is AggregationKind.ADDITIVE:
        def at(n: float) -> float:
            return n * body_value
    elif kind is AggregationKind.MULTIPLICATIVE:
        def at(n: float) -> float:
            return body_value ** n
    else:
        # MIN / MAX / AVERAGE over n copies of the same value is the value.
        return body_value
    if approach is AggregationApproach.MEAN:
        return at(mean_iterations)
    # Which iteration count is the worst/best case depends on the
    # property's direction, not the pattern: n·v grows with n, so for a
    # *positive* additive property (a reward accrued per pass) the
    # pessimistic bound is a single iteration, not max_iterations — and
    # symmetrically for multiplicative values above/below 1.  Both
    # formulas are monotone in n, so the extremes sit at the endpoints.
    extremes = (at(1.0), at(float(max_iterations)))
    if approach is AggregationApproach.PESSIMISTIC:
        return prop.direction.worst(extremes)
    return prop.direction.best(extremes)


def aggregate_values(
    prop: QoSProperty,
    node: Node,
    activity_values: Mapping[str, float],
    approach: AggregationApproach = AggregationApproach.PESSIMISTIC,
) -> float:
    """Aggregate one property over a pattern tree.

    ``activity_values`` maps activity names to that property's value for the
    service bound to the activity.  Raises :class:`AggregationError` when a
    value is missing.
    """
    if isinstance(node, Leaf):
        name = node.activity.name
        try:
            return activity_values[name]
        except KeyError:
            raise AggregationError(
                f"no value of {prop.name!r} for activity {name!r}"
            ) from None
    if isinstance(node, Sequence):
        values = [
            aggregate_values(prop, child, activity_values, approach)
            for child in node.members
        ]
        return _sequence(prop.aggregation, values)
    if isinstance(node, Parallel):
        values = [
            aggregate_values(prop, child, activity_values, approach)
            for child in node.branches
        ]
        return _parallel(prop, values)
    if isinstance(node, Conditional):
        values = [
            aggregate_values(prop, child, activity_values, approach)
            for child in node.branches
        ]
        return _conditional(prop, values, node.branch_probabilities(), approach)
    if isinstance(node, Loop):
        body = aggregate_values(prop, node.body, activity_values, approach)
        return _loop(prop, body, node.max_iterations, node.mean_iterations(), approach)
    raise AggregationError(f"unknown pattern node: {type(node).__name__}")


def aggregate_composition(
    task: Task,
    assignments: Mapping[str, QoSVector],
    properties: Mapping[str, QoSProperty],
    approach: AggregationApproach = AggregationApproach.PESSIMISTIC,
) -> QoSVector:
    """Aggregate a full QoS vector for a composition.

    ``assignments`` maps each activity name to the QoS vector of its bound
    service (advertised or observed); the result is the composition's
    ``QoS_Cv`` vector over ``properties``.
    """
    values: Dict[str, float] = {}
    for name, prop in properties.items():
        activity_values = {
            activity: vector[name]
            for activity, vector in assignments.items()
            if name in vector
        }
        values[name] = aggregate_values(prop, task.root, activity_values, approach)
    return QoSVector(values, dict(properties))


def aggregation_bounds(
    task: Task,
    prop: QoSProperty,
    per_activity_extremes: Mapping[str, tuple],
    approach: AggregationApproach = AggregationApproach.PESSIMISTIC,
) -> tuple:
    """(best, worst) achievable aggregate for one property.

    ``per_activity_extremes`` maps activity names to ``(best, worst)`` raw
    values over that activity's candidate set.  The bounds feed utility
    normalisation of aggregated QoS and the feasibility pre-check of QASSA's
    global phase.
    """
    best = aggregate_values(
        prop,
        task.root,
        {a: extremes[0] for a, extremes in per_activity_extremes.items()},
        approach,
    )
    worst = aggregate_values(
        prop,
        task.root,
        {a: extremes[1] for a, extremes in per_activity_extremes.items()},
        approach,
    )
    return best, worst
