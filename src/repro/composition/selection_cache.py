"""Incremental re-selection cache for QASSA's local phase.

In a pervasive environment selection runs repeatedly: services churn,
faults trigger substitution, users re-issue requests.  Most of the time the
candidate set of *most* activities is unchanged between two runs — only the
activity whose provider appeared/vanished actually needs its normalisation,
Pareto pruning and clustering redone.  :class:`SelectionCache` makes that
incremental: it remembers, per activity, the local-phase result keyed by a
**fingerprint** of the candidate set, and a selector asks it before
recomputing.

Design notes
------------

* The payload is *opaque* to this module (QASSA stores its
  ``LocalSelection`` objects) so the cache carries no import dependency on
  the selector — the selector depends on the cache, never the reverse.
* The fingerprint covers everything the local phase reads from a candidate:
  ``(service_id, advertised QoS vector)`` per service, in pool order.  Any
  publish/withdraw/QoS-refresh of a candidate changes the fingerprint and
  forces a recompute; reordering the pool does too (clustering seeds index
  into pool order, so order is part of the contract).
* Results also depend on the selection *context* — which properties are
  relevant, the user's weights, the aggregation approach and the local-phase
  tuning knobs.  :meth:`begin` receives a hashable ``context_key``; when it
  differs from the previous run's the whole cache is flushed.  Within one
  context, cached results are byte-equal to recomputed ones because the
  local phase is deterministic (seeded k-means, stable sorts).
* :meth:`rank_candidates` lets the substitution path reuse the cached
  per-activity normaliser and the last run's weights to score fresh
  candidates without a full re-selection.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.services.description import ServiceDescription
from repro.composition.utility import service_utility

#: One candidate set's identity: ``(service_id, advertised_qos)`` per
#: service, in pool order.  ``QoSVector`` is hashable and value-compares,
#: so a provider refreshing its advertised QoS changes the fingerprint.
Fingerprint = Tuple[Tuple[str, Any], ...]


class SelectionCache:
    """Per-activity memo of local-phase results across selection runs."""

    def __init__(self) -> None:
        self._entries: Dict[str, Tuple[Fingerprint, Any]] = {}
        self._context_key: Optional[Any] = None
        self._weights: Dict[str, float] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    @staticmethod
    def fingerprint(services: Sequence[ServiceDescription]) -> Fingerprint:
        """Identity of a candidate pool for caching purposes."""
        return tuple((s.service_id, s.advertised_qos) for s in services)

    def begin(self, context_key: Any, weights: Mapping[str, float]) -> None:
        """Start a selection run under ``context_key``.

        A context change (different relevant properties, weights, approach
        or local-phase knobs) flushes every entry — results computed under
        another context are not comparable, let alone reusable.
        """
        if context_key != self._context_key:
            if self._context_key is not None:
                self.invalidations += 1
            self._entries.clear()
            self._context_key = context_key
        self._weights = dict(weights)

    def lookup(self, activity_name: str, fingerprint: Fingerprint) -> Optional[Any]:
        """The cached payload for an unchanged candidate pool, else None."""
        entry = self._entries.get(activity_name)
        if entry is not None and entry[0] == fingerprint:
            self.hits += 1
            return entry[1]
        self.misses += 1
        return None

    def store(self, activity_name: str, fingerprint: Fingerprint, payload: Any) -> None:
        self._entries[activity_name] = (fingerprint, payload)

    def clear(self) -> None:
        """Drop everything (e.g. when the QoS model itself changes)."""
        if self._entries or self._context_key is not None:
            self.invalidations += 1
        self._entries.clear()
        self._context_key = None
        self._weights = {}

    # ------------------------------------------------------------------
    def rank_candidates(
        self,
        activity_name: str,
        services: Sequence[ServiceDescription],
    ) -> Optional[List[ServiceDescription]]:
        """Rank fresh candidates with the cached normaliser + last weights.

        Substitution discovers replacement services *after* the selection
        run that populated this cache; scoring them against the cached
        per-activity normaliser keeps their utilities comparable with the
        original ranking without recomputing the local phase.  Returns
        ``None`` when the activity has no cached entry (caller falls back
        to its unscored ordering).
        """
        entry = self._entries.get(activity_name)
        if entry is None or not self._weights:
            return None
        normalizer = getattr(entry[1], "normalizer", None)
        if normalizer is None:
            return None
        weights = self._weights

        def score(service: ServiceDescription) -> float:
            return service_utility(
                service.advertised_qos, normalizer, weights
            )

        return sorted(services, key=lambda s: (-score(s), s.service_id))
