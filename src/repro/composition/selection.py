"""Shared types for QoS-aware selection algorithms.

Every selector (QASSA, the baselines, the distributed variant) consumes a
:class:`CandidateSets` — the per-activity candidate services discovery
produced — plus the :class:`~repro.composition.request.UserRequest`, and
produces a :class:`CompositionPlan`: one primary service per activity,
ranked alternates for dynamic binding/substitution, the aggregated QoS and
its utility, and run statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.errors import NoCandidateError, SelectionError
from repro.qos.properties import QoSProperty
from repro.qos.values import QoSVector
from repro.services.description import ServiceDescription
from repro.composition.aggregation import (
    AggregationApproach,
    aggregate_composition,
    aggregation_bounds,
)
from repro.composition.request import UserRequest
from repro.composition.task import Task
from repro.composition.utility import Normalizer, composition_utility


@runtime_checkable
class Selector(Protocol):
    """The uniform contract every selection algorithm satisfies.

    A selector turns ``(request, candidates)`` into a
    :class:`CompositionPlan`.  ``best_effort`` asks for the best
    *infeasible* plan instead of a :class:`~repro.errors.SelectionError`
    when no explored composition meets the global constraints;
    ``alternates`` asks each activity to retain that many ranked
    substitute services beyond its primary (dynamic binding /
    substitution support).  :class:`~repro.composition.qassa.QASSA`
    configures alternates through
    :attr:`~repro.composition.qassa.QassaConfig.alternates_kept` rather
    than per call, which a structural protocol accommodates — callers
    that need the knob per call use the exact/baseline selectors.
    """

    def select(
        self,
        request: UserRequest,
        candidates: "CandidateSets",
        best_effort: bool = False,
        alternates: int = 0,
    ) -> "CompositionPlan":
        """Select a composition fulfilling (or best-effort failing) the
        request."""
        ...


class CandidateSets:
    """Per-activity candidate services for one task.

    Keys are activity *names* (not capabilities — two activities may share a
    capability yet draw from differently filtered candidate pools).
    """

    def __init__(
        self,
        task: Task,
        candidates: Mapping[str, Sequence[ServiceDescription]],
    ) -> None:
        self.task = task
        self._sets: Dict[str, List[ServiceDescription]] = {}
        for activity in task.activities:
            services = list(candidates.get(activity.name, ()))
            if not services:
                raise NoCandidateError(activity.name)
            self._sets[activity.name] = services

    def __getitem__(self, activity_name: str) -> List[ServiceDescription]:
        return self._sets[activity_name]

    def __iter__(self):
        return iter(self._sets)

    def items(self):
        return self._sets.items()

    def activity_names(self) -> List[str]:
        return list(self._sets)

    def sizes(self) -> Dict[str, int]:
        return {name: len(services) for name, services in self._sets.items()}

    def search_space(self) -> int:
        """Number of distinct full assignments (product of set sizes)."""
        total = 1
        for services in self._sets.values():
            total *= len(services)
        return total

    def extremes(
        self, property_name: str, prop: QoSProperty
    ) -> Dict[str, Tuple[float, float]]:
        """Per-activity (best, worst) advertised values for one property."""
        result: Dict[str, Tuple[float, float]] = {}
        for name, services in self._sets.items():
            values = [
                s.advertised_qos[property_name]
                for s in services
                if property_name in s.advertised_qos
            ]
            if not values:
                raise SelectionError(
                    f"no candidate of activity {name!r} advertises "
                    f"{property_name!r}"
                )
            result[name] = (prop.direction.best(values), prop.direction.worst(values))
        return result


@dataclass
class SelectedActivity:
    """The selection outcome for one activity: a ranked service list.

    ``services[0]`` is the primary binding; the tail provides the alternates
    QASSA deliberately keeps for dynamic binding and substitution (§I.5).
    """

    activity_name: str
    services: List[ServiceDescription]

    def __post_init__(self) -> None:
        if not self.services:
            raise SelectionError(
                f"selected activity {self.activity_name!r} has no service"
            )

    @property
    def primary(self) -> ServiceDescription:
        return self.services[0]

    @property
    def alternates(self) -> List[ServiceDescription]:
        return self.services[1:]


@dataclass
class SelectionStatistics:
    """Instrumentation of one selection run (feeds the Ch. VI figures)."""

    elapsed_seconds: float = 0.0
    utility_evaluations: int = 0
    combinations_explored: int = 0
    clustering_iterations: int = 0
    search_space: int = 0
    #: Incremental re-selection instrumentation (zero when no cache is wired):
    #: per-activity local-phase results served from / missed in the
    #: :class:`~repro.composition.selection_cache.SelectionCache`, and how
    #: many activities actually had their local phase recomputed this run.
    cache_hits: int = 0
    cache_misses: int = 0
    activities_recomputed: int = 0
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class CompositionPlan:
    """A concrete service composition fulfilling (or failing) a request."""

    task: Task
    request: UserRequest
    selections: Dict[str, SelectedActivity]
    aggregated_qos: QoSVector
    utility: float
    feasible: bool
    approach: AggregationApproach
    statistics: SelectionStatistics = field(default_factory=SelectionStatistics)

    def binding(self) -> Dict[str, ServiceDescription]:
        """activity name -> primary service."""
        return {name: sel.primary for name, sel in self.selections.items()}

    def service_ids(self) -> Dict[str, str]:
        return {name: sel.primary.service_id for name, sel in self.selections.items()}

    def alternates_for(self, activity_name: str) -> List[ServiceDescription]:
        return self.selections[activity_name].alternates

    def rebind(self, activity_name: str, service: ServiceDescription,
               properties: Mapping[str, QoSProperty]) -> "CompositionPlan":
        """A new plan with one activity bound to a different service.

        Aggregated QoS and feasibility are recomputed; utility is left for
        the caller to refresh (it needs a normaliser).
        """
        selections = dict(self.selections)
        current = selections[activity_name]
        others = [s for s in current.services if s != service]
        selections[activity_name] = SelectedActivity(activity_name, [service] + others)
        aggregated = aggregate_composition(
            self.task,
            {name: sel.primary.advertised_qos for name, sel in selections.items()},
            dict(properties),
            self.approach,
        )
        return CompositionPlan(
            task=self.task,
            request=self.request,
            selections=selections,
            aggregated_qos=aggregated,
            utility=self.utility,
            feasible=self.request.satisfied_by(aggregated),
            approach=self.approach,
            statistics=self.statistics,
        )

    def clone(self) -> "CompositionPlan":
        """An independent copy that execution-time adaptation can mutate.

        Substitution rewrites ``selections[...].services`` and the plan's
        aggregated QoS in place, so a plan served from a cache (the
        runtime's request coalescing) must be cloned per execution.  The
        immutable leaves (task, request, services, statistics) are shared.
        """
        return CompositionPlan(
            task=self.task,
            request=self.request,
            selections={
                name: SelectedActivity(sel.activity_name, list(sel.services))
                for name, sel in self.selections.items()
            },
            aggregated_qos=self.aggregated_qos,
            utility=self.utility,
            feasible=self.feasible,
            approach=self.approach,
            statistics=self.statistics,
        )


def make_global_normalizer(
    task: Task,
    candidates: CandidateSets,
    properties: Mapping[str, QoSProperty],
    approach: AggregationApproach,
) -> Normalizer:
    """A normaliser over *aggregated* QoS, from per-activity extremes.

    Spans are the best/worst achievable aggregates; any concrete
    composition's aggregated QoS falls inside them, so utilities are
    comparable across selection algorithms (the optimality metric of
    §VI.3.2 depends on this).
    """
    spans: Dict[str, Tuple[float, float]] = {}
    for name, prop in properties.items():
        best, worst = aggregation_bounds(
            task, prop, candidates.extremes(name, prop), approach
        )
        low, high = min(best, worst), max(best, worst)
        spans[name] = (low, high)
    return Normalizer(dict(properties), spans)


def evaluate_assignment(
    task: Task,
    request: UserRequest,
    assignment: Mapping[str, ServiceDescription],
    properties: Mapping[str, QoSProperty],
    normalizer: Normalizer,
    approach: AggregationApproach,
) -> Tuple[QoSVector, float, bool]:
    """Aggregate + score one full activity->service assignment."""
    aggregated = aggregate_composition(
        task,
        {name: service.advertised_qos for name, service in assignment.items()},
        dict(properties),
        approach,
    )
    weights = request.normalised_weights(properties)
    utility = composition_utility(aggregated, normalizer, weights)
    return aggregated, utility, request.satisfied_by(aggregated)
