"""Resilience subsystem: policies, circuit breakers, fault injection and
graceful degradation for composition execution.

See ``docs/RESILIENCE.md`` for the policy knobs, the breaker state machine,
the fault schedule format and the degradation semantics.
"""

from repro.resilience.breaker import (
    BreakerRegistry,
    BreakerState,
    CircuitBreaker,
)
from repro.resilience.degradation import PartialExecutionReport
from repro.resilience.faults import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    ONE_SHOT_KINDS,
    WINDOW_KINDS,
)
from repro.resilience.policies import (
    CircuitBreakerPolicy,
    DegradationPolicy,
    ResilienceConfig,
    RetryPolicy,
    TimeoutPolicy,
)

__all__ = [
    "BreakerRegistry",
    "BreakerState",
    "CircuitBreaker",
    "CircuitBreakerPolicy",
    "DegradationPolicy",
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "ONE_SHOT_KINDS",
    "PartialExecutionReport",
    "ResilienceConfig",
    "RetryPolicy",
    "TimeoutPolicy",
    "WINDOW_KINDS",
]
