"""Per-service circuit breakers on the simulated clock.

A breaker guards one provider: after repeated failures the middleware stops
sending traffic to it (**open**), re-probes it after a cool-down
(**half-open**) and restores it once it proves healthy (**closed**).  In a
pervasive environment this is the difference between burning a retry budget
on a provider whose device left the room and failing over immediately.

State transitions happen on the shared :class:`SimulatedClock`, so breaker
behaviour is deterministic and replayable.  The registry exports the
``breaker_state`` gauge (0 = closed, 1 = half-open, 2 = open, per service)
and a ``breaker_transitions_total`` counter.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Dict, List, Optional, TYPE_CHECKING, Tuple

from repro.observability import core as observability_core
from repro.resilience.policies import CircuitBreakerPolicy

if TYPE_CHECKING:  # pragma: no cover - import would cycle via repro.execution
    from repro.execution.clock import SimulatedClock


class BreakerState(enum.Enum):
    """Where a breaker stands: traffic flows (closed), is rejected (open),
    or trickles through as recovery probes (half-open)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: Gauge encoding, ordered by severity.
_STATE_VALUE = {
    BreakerState.CLOSED: 0,
    BreakerState.HALF_OPEN: 1,
    BreakerState.OPEN: 2,
}


class CircuitBreaker:
    """The closed/open/half-open state machine for one service."""

    def __init__(
        self,
        service_id: str,
        policy: CircuitBreakerPolicy,
        clock: "SimulatedClock",
    ) -> None:
        self.service_id = service_id
        self.policy = policy
        self.clock = clock
        self._state = BreakerState.CLOSED
        self._outcomes: Deque[bool] = deque(maxlen=policy.window)
        self._opened_at = 0.0
        self._half_open_streak = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> BreakerState:
        self._maybe_half_open()
        return self._state

    def allow(self) -> bool:
        """May the binder route a call to this service right now?

        Side-effect free apart from the time-driven open → half-open
        transition (which is idempotent), so callers can probe a whole
        candidate list without consuming anything.
        """
        self._maybe_half_open()
        return self._state is not BreakerState.OPEN

    def record_success(self) -> None:
        self._maybe_half_open()
        if self._state is BreakerState.HALF_OPEN:
            self._half_open_streak += 1
            if self._half_open_streak >= self.policy.half_open_successes:
                self._transition(BreakerState.CLOSED)
                self._outcomes.clear()
            return
        self._outcomes.append(True)

    def record_failure(self) -> None:
        self._maybe_half_open()
        if self._state is BreakerState.HALF_OPEN:
            # The probe failed: back to open, cool-down restarts.
            self._transition(BreakerState.OPEN)
            self._opened_at = self.clock.now()
            return
        if self._state is BreakerState.OPEN:
            return
        self._outcomes.append(False)
        if len(self._outcomes) >= self.policy.min_calls:
            failures = sum(1 for ok in self._outcomes if not ok)
            if failures / len(self._outcomes) >= (
                self.policy.failure_rate_threshold
            ):
                self._transition(BreakerState.OPEN)
                self._opened_at = self.clock.now()

    # ------------------------------------------------------------------
    def _maybe_half_open(self) -> None:
        if self._state is BreakerState.OPEN and (
            self.clock.now() - self._opened_at >= self.policy.cooldown_s
        ):
            self._transition(BreakerState.HALF_OPEN)

    def _transition(self, state: BreakerState) -> None:
        self._state = state
        if state is BreakerState.HALF_OPEN:
            self._half_open_streak = 0

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.service_id!r}, {self.state.value}, "
            f"outcomes={list(self._outcomes)})"
        )


class BreakerRegistry:
    """Lazily-created breakers for every service the middleware touches."""

    def __init__(
        self,
        policy: Optional[CircuitBreakerPolicy] = None,
        clock: Optional["SimulatedClock"] = None,
        observability=None,
    ) -> None:
        if clock is None:
            from repro.execution.clock import SimulatedClock

            clock = SimulatedClock()
        self.policy = policy if policy is not None else CircuitBreakerPolicy()
        self.clock = clock
        self.obs = observability_core.resolve(observability)
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, service_id: str) -> CircuitBreaker:
        breaker = self._breakers.get(service_id)
        if breaker is None:
            breaker = self._breakers[service_id] = CircuitBreaker(
                service_id, self.policy, self.clock
            )
        return breaker

    # ------------------------------------------------------------------
    def allow(self, service_id: str) -> bool:
        breaker = self._breakers.get(service_id)
        return breaker.allow() if breaker is not None else True

    def record(self, service_id: str, succeeded: bool) -> None:
        breaker = self.breaker(service_id)
        before = breaker.state
        if succeeded:
            breaker.record_success()
        else:
            breaker.record_failure()
        after = breaker.state
        if self.obs.enabled:
            self.obs.gauge("breaker_state", service=service_id).set(
                _STATE_VALUE[after]
            )
            if after is not before:
                self.obs.counter(
                    "breaker_transitions_total", to=after.value
                ).inc()

    def state(self, service_id: str) -> BreakerState:
        breaker = self._breakers.get(service_id)
        return breaker.state if breaker is not None else BreakerState.CLOSED

    def states(self) -> List[Tuple[str, BreakerState]]:
        return [(sid, b.state) for sid, b in sorted(self._breakers.items())]

    def open_count(self) -> int:
        return sum(
            1 for _, state in self.states() if state is BreakerState.OPEN
        )
