"""Declarative, seeded fault-injection schedules.

A :class:`FaultSchedule` is a time-ordered list of :class:`FaultEvent`\\ s
that :meth:`PervasiveEnvironment.step()
<repro.env.environment.PervasiveEnvironment.step>` (and, for events landing
*mid-composition*, :meth:`invoke
<repro.env.environment.PervasiveEnvironment.invoke>`) replays
deterministically — the reproducible fault loads the resilience benchmarks
and the adaptation claims are measured under.  It replaces the ad-hoc
test-only calls to ``kill_service`` / ``degrade_link`` scattered through
experiments.

Three families of events:

* **one-shot** — applied exactly once when simulated time reaches ``at``:
  ``kill_service``, ``kill_device``, ``degrade_link``;
* **window** — active during ``[at, at + duration)`` and consulted on every
  invocation that falls inside the window: ``latency_spike`` (multiplies
  observed response time by ``factor``), ``flaky_window`` (invocations fail
  with ``fail_probability``), ``partition`` (the device is unreachable);
* **runtime** — platform-level faults consumed not by the environment but
  by the concurrent runtime's :class:`~repro.runtime.chaos.ChaosPolicy` at
  well-defined injection points: ``worker_crash`` (a worker thread dies
  with the request it holds), ``worker_stall`` (a worker freezes for
  ``duration`` wall seconds), ``snapshot_failure`` (one registry-snapshot
  acquisition fails transiently) and ``commit_delay`` (the commit stage
  stalls for ``duration`` wall seconds while holding its turn).  Runtime
  events fire at most once, when the first matching injection point
  observes simulated time ``>= at``; the environment ignores them.

Schedules are composable (:meth:`FaultSchedule.merge`,
:meth:`FaultSchedule.shifted`), serialisable to/from JSON (the CLI's
``--faults <file>``), and the random builders are seeded.
"""

from __future__ import annotations

import enum
import json
import random
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import EnvironmentError_


class FaultKind(enum.Enum):
    """The injectable fault types — one-shot, windowed and runtime."""

    # One-shot events.
    KILL_SERVICE = "kill_service"
    KILL_DEVICE = "kill_device"
    DEGRADE_LINK = "degrade_link"
    # Window events.
    LATENCY_SPIKE = "latency_spike"
    FLAKY_WINDOW = "flaky_window"
    PARTITION = "partition"
    # Runtime (platform-level) events, consumed by the runtime's ChaosPolicy.
    WORKER_CRASH = "worker_crash"
    WORKER_STALL = "worker_stall"
    SNAPSHOT_FAILURE = "snapshot_failure"
    COMMIT_DELAY = "commit_delay"


#: Kinds applied once at their timestamp (vs. consulted over a window).
ONE_SHOT_KINDS = frozenset(
    {FaultKind.KILL_SERVICE, FaultKind.KILL_DEVICE, FaultKind.DEGRADE_LINK}
)
WINDOW_KINDS = frozenset(
    {FaultKind.LATENCY_SPIKE, FaultKind.FLAKY_WINDOW, FaultKind.PARTITION}
)
#: Kinds the concurrent runtime injects at its own fault-domain boundaries
#: (worker pool, snapshot manager, commit stage) — the environment skips
#: them during replay.
RUNTIME_KINDS = frozenset(
    {
        FaultKind.WORKER_CRASH,
        FaultKind.WORKER_STALL,
        FaultKind.SNAPSHOT_FAILURE,
        FaultKind.COMMIT_DELAY,
    }
)
#: Runtime kinds whose ``duration`` is a wall-clock sleep length.
RUNTIME_DELAY_KINDS = frozenset(
    {FaultKind.WORKER_STALL, FaultKind.COMMIT_DELAY}
)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault.

    ``target`` is a service id for ``kill_service`` / ``flaky_window``, a
    device id for ``kill_device`` / ``degrade_link`` / ``partition``, and
    either for ``latency_spike`` (the spike applies when the invocation's
    service *or* hosting device matches).  For the runtime worker kinds
    (``worker_crash`` / ``worker_stall``) it is ``"worker-<index>"`` to pin
    a specific worker or ``"any"`` for whichever worker reaches the
    injection point first; ``snapshot_failure`` / ``commit_delay``
    conventionally use ``"runtime"``.
    """

    at: float
    kind: FaultKind
    target: str
    duration: float = 0.0
    factor: float = 2.0            # latency_spike multiplier
    fraction: float = 0.5          # degrade_link severity
    fail_probability: float = 1.0  # flaky_window failure odds

    def __post_init__(self) -> None:
        if self.at < 0:
            raise EnvironmentError_(f"fault at {self.at} is before t=0")
        if not self.target:
            raise EnvironmentError_("fault needs a target id")
        if self.kind in WINDOW_KINDS and self.duration <= 0:
            raise EnvironmentError_(
                f"{self.kind.value} fault needs a positive duration"
            )
        if self.kind in RUNTIME_DELAY_KINDS and self.duration <= 0:
            raise EnvironmentError_(
                f"{self.kind.value} fault needs a positive duration "
                "(the wall-clock stall length)"
            )
        if self.factor < 1.0:
            raise EnvironmentError_("latency spike factor must be >= 1")
        if not 0.0 <= self.fraction <= 1.0:
            raise EnvironmentError_("degrade fraction must be in [0, 1]")
        if not 0.0 <= self.fail_probability <= 1.0:
            raise EnvironmentError_("fail_probability must be in [0, 1]")

    @property
    def until(self) -> float:
        return self.at + self.duration

    def active(self, now: float) -> bool:
        """Window events only: is ``now`` inside ``[at, until)``?"""
        return self.at <= now < self.until

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "at": self.at, "kind": self.kind.value, "target": self.target,
        }
        if self.kind in WINDOW_KINDS or self.kind in RUNTIME_DELAY_KINDS:
            record["duration"] = self.duration
        if self.kind is FaultKind.LATENCY_SPIKE:
            record["factor"] = self.factor
        if self.kind is FaultKind.DEGRADE_LINK:
            record["fraction"] = self.fraction
        if self.kind is FaultKind.FLAKY_WINDOW:
            record["fail_probability"] = self.fail_probability
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "FaultEvent":
        try:
            kind = FaultKind(record["kind"])
        except (KeyError, ValueError) as exc:
            raise EnvironmentError_(f"bad fault record {record!r}: {exc}")
        known = {"at", "kind", "target", "duration", "factor", "fraction",
                 "fail_probability"}
        unknown = set(record) - known
        if unknown:
            raise EnvironmentError_(
                f"unknown fault fields {sorted(unknown)} in {record!r}"
            )
        kwargs = {k: record[k] for k in known - {"kind"} if k in record}
        return cls(kind=kind, **kwargs)


class FaultSchedule:
    """An immutable, time-ordered, composable set of fault events."""

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        # Stable sort: events at the same instant replay in insertion
        # order, keeping composed schedules deterministic.
        self._events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: e.at)
        )

    # ------------------------------------------------------------------
    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    # -- composition ---------------------------------------------------
    def merge(self, other: "FaultSchedule") -> "FaultSchedule":
        return FaultSchedule(self._events + tuple(other))

    def shifted(self, dt: float) -> "FaultSchedule":
        """The same schedule, translated ``dt`` seconds into the future."""
        return FaultSchedule(
            replace(event, at=event.at + dt) for event in self._events
        )

    def targeting(self, kind: FaultKind) -> List[FaultEvent]:
        return [e for e in self._events if e.kind is kind]

    def runtime_events(self) -> "FaultSchedule":
        """The runtime-kind subset (fed to a runtime ``ChaosPolicy``)."""
        return FaultSchedule(
            e for e in self._events if e.kind in RUNTIME_KINDS
        )

    def environment_events(self) -> "FaultSchedule":
        """The service/device-kind subset (replayed by the environment)."""
        return FaultSchedule(
            e for e in self._events if e.kind not in RUNTIME_KINDS
        )

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"events": [event.to_dict() for event in self._events]}

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "FaultSchedule":
        events = record.get("events")
        if not isinstance(events, list):
            raise EnvironmentError_(
                "fault schedule JSON needs an 'events' list"
            )
        return cls(FaultEvent.from_dict(e) for e in events)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(text))

    def dump(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "FaultSchedule":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # -- seeded builders ----------------------------------------------
    @classmethod
    def kill_services(
        cls,
        service_ids: Sequence[str],
        between: Tuple[float, float],
        seed: int = 0,
    ) -> "FaultSchedule":
        """Kill every listed service at a seeded-random time in a window."""
        start, end = between
        if end < start:
            raise EnvironmentError_(f"empty kill window [{start}, {end}]")
        rng = random.Random(seed)
        return cls(
            FaultEvent(
                at=start + rng.random() * (end - start),
                kind=FaultKind.KILL_SERVICE,
                target=service_id,
            )
            for service_id in service_ids
        )

    @classmethod
    def kill_fraction(
        cls,
        service_ids: Sequence[str],
        fraction: float,
        between: Tuple[float, float],
        seed: int = 0,
    ) -> "FaultSchedule":
        """Kill a seeded-random ``fraction`` of the services in a window.

        Rounds the victim count *up*, so any positive fraction kills at
        least one service.
        """
        if not 0.0 <= fraction <= 1.0:
            raise EnvironmentError_("kill fraction must be in [0, 1]")
        rng = random.Random(seed)
        count = min(
            len(service_ids), int(-(-len(service_ids) * fraction // 1))
        )
        victims = rng.sample(list(service_ids), count) if count else []
        return cls.kill_services(victims, between, seed=seed + 1)

    @classmethod
    def runtime_chaos(
        cls,
        between: Tuple[float, float],
        *,
        crashes: int = 2,
        stalls: int = 1,
        snapshot_failures: int = 0,
        commit_delays: int = 0,
        stall_seconds: float = 0.05,
        seed: int = 0,
    ) -> "FaultSchedule":
        """A seeded runtime-fault schedule over a simulated-time window.

        The workhorse builder for chaos benchmarks/tests: ``crashes`` worker
        crashes, ``stalls`` worker stalls of ``stall_seconds`` each,
        plus optional snapshot failures and commit delays, all at
        seeded-random instants inside ``between``.  Deterministic for a
        given seed, like the service-fault builders.
        """
        start, end = between
        if end < start:
            raise EnvironmentError_(f"empty chaos window [{start}, {end}]")
        rng = random.Random(seed)

        def instant() -> float:
            return start + rng.random() * (end - start)

        events: List[FaultEvent] = []
        for _ in range(crashes):
            events.append(
                FaultEvent(instant(), FaultKind.WORKER_CRASH, "any")
            )
        for _ in range(stalls):
            events.append(
                FaultEvent(instant(), FaultKind.WORKER_STALL, "any",
                           duration=stall_seconds)
            )
        for _ in range(snapshot_failures):
            events.append(
                FaultEvent(instant(), FaultKind.SNAPSHOT_FAILURE, "runtime")
            )
        for _ in range(commit_delays):
            events.append(
                FaultEvent(instant(), FaultKind.COMMIT_DELAY, "runtime",
                           duration=stall_seconds)
            )
        return cls(events)

    def __repr__(self) -> str:
        return f"FaultSchedule({len(self._events)} events)"
