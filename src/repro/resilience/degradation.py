"""Graceful degradation: partial completion with a utility penalty.

When the retry budget of an **optional** activity
(:attr:`~repro.composition.task.Activity.optional`) is exhausted, the
engine skips it instead of failing the whole composition.  The
:class:`PartialExecutionReport` is the user-facing account of such a run:
which activities completed, which were skipped, and what the degradation
cost in utility — ``degraded_utility = planned_utility ·
(1 − penalty_per_skip · skips)``, clamped at zero.  A report with no skips
is simply not degraded (``QASOM.execute`` only attaches one when the run
degraded).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, TYPE_CHECKING

from repro.resilience.policies import DegradationPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.composition.selection import CompositionPlan
    from repro.execution.engine import ExecutionReport


@dataclass(frozen=True)
class PartialExecutionReport:
    """The degradation summary of one (possibly partial) execution."""

    task_name: str
    completed_activities: List[str] = field(default_factory=list)
    skipped_activities: List[str] = field(default_factory=list)
    planned_utility: float = 0.0
    degraded_utility: float = 0.0

    @property
    def degraded(self) -> bool:
        return bool(self.skipped_activities)

    @property
    def utility_penalty(self) -> float:
        return self.planned_utility - self.degraded_utility

    @property
    def completion_ratio(self) -> float:
        """Fraction of planned activities that actually completed."""
        total = len(self.completed_activities) + len(self.skipped_activities)
        return len(self.completed_activities) / total if total else 1.0

    @classmethod
    def from_run(
        cls,
        plan: "CompositionPlan",
        report: "ExecutionReport",
        policy: DegradationPolicy,
    ) -> "PartialExecutionReport":
        skipped = list(report.skipped_activities)
        completed = sorted(
            {r.activity_name for r in report.invocations if r.succeeded}
        )
        penalty = policy.utility_penalty_per_skip * len(skipped)
        degraded_utility = max(0.0, plan.utility * (1.0 - penalty))
        return cls(
            task_name=report.task_name,
            completed_activities=completed,
            skipped_activities=skipped,
            planned_utility=plan.utility,
            degraded_utility=degraded_utility,
        )
