"""Resilience policies: retry budgets, timeouts, breaker and degradation knobs.

The paper's central promise is that compositions keep meeting their global
QoS constraints *despite* the volatility of pervasive environments (churn,
link degradation, provider failure).  The policies in this module are the
declarative half of that promise: small frozen dataclasses the execution
path (:class:`~repro.execution.engine.ExecutionEngine`,
:class:`~repro.execution.binding.DynamicBinder`) consults before and after
every invocation attempt.  Everything is expressed on the **simulated
clock** — backoff delays and breaker cool-downs advance simulated time, so
experiments stay deterministic and compress to milliseconds of wall time.

See ``docs/RESILIENCE.md`` for the full knob reference.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ExecutionError


@dataclass(frozen=True)
class RetryPolicy:
    """A bounded retry budget with exponential backoff and seeded jitter.

    ``max_attempts`` caps the invocation attempts per activity (the budget —
    never an unbounded sweep over the candidate list).  Between attempts the
    engine sleeps ``backoff_base_s * backoff_multiplier^(failures-1)`` on
    the simulated clock, capped at ``backoff_max_s`` and stretched by up to
    ``jitter`` (a fraction) of seeded randomness so synchronous retries
    don't stampede a recovering provider.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExecutionError("retry max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ExecutionError("backoff delays must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ExecutionError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ExecutionError("jitter must lie in [0, 1]")

    def backoff_seconds(self, failures: int, rng: random.Random) -> float:
        """Delay before the next attempt after ``failures`` failed ones."""
        if failures < 1:
            return 0.0
        delay = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_multiplier ** (failures - 1),
        )
        if self.jitter > 0.0:
            delay *= 1.0 + self.jitter * rng.random()
        return min(delay, self.backoff_max_s * (1.0 + self.jitter))


@dataclass(frozen=True)
class TimeoutPolicy:
    """Per-invocation timeout on the simulated clock.

    An invocation whose observed ``response_time`` exceeds
    ``invoke_timeout_ms`` is treated as a failure: the caller gave up
    waiting, so the engine advances the clock by exactly the timeout (not
    the full response time) and moves on to the next candidate.  ``None``
    disables the timeout.
    """

    invoke_timeout_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.invoke_timeout_ms is not None and self.invoke_timeout_ms <= 0:
            raise ExecutionError("invoke timeout must be positive (or None)")

    def expired(self, response_ms: Optional[float]) -> bool:
        return (
            self.invoke_timeout_ms is not None
            and response_ms is not None
            and response_ms > self.invoke_timeout_ms
        )


@dataclass(frozen=True)
class CircuitBreakerPolicy:
    """Per-service circuit breaker thresholds (closed/open/half-open).

    A breaker trips **open** when, over a rolling window of the last
    ``window`` outcomes (once at least ``min_calls`` were seen), the
    failure rate reaches ``failure_rate_threshold``.  While open every call
    is rejected without touching the provider; after ``cooldown_s`` of
    simulated time the breaker turns **half-open** and lets probe calls
    through — ``half_open_successes`` consecutive successes close it, any
    failure re-opens it (restarting the cool-down).
    """

    window: int = 8
    min_calls: int = 3
    failure_rate_threshold: float = 0.5
    cooldown_s: float = 30.0
    half_open_successes: int = 1

    def __post_init__(self) -> None:
        if self.window < 1 or self.min_calls < 1:
            raise ExecutionError("breaker window/min_calls must be >= 1")
        if not 0.0 < self.failure_rate_threshold <= 1.0:
            raise ExecutionError("breaker failure_rate_threshold in (0, 1]")
        if self.cooldown_s < 0:
            raise ExecutionError("breaker cooldown must be >= 0")
        if self.half_open_successes < 1:
            raise ExecutionError("breaker half_open_successes must be >= 1")


@dataclass(frozen=True)
class DegradationPolicy:
    """Graceful degradation: complete degraded instead of failing outright.

    When an **optional** activity (``Activity.optional``) exhausts its
    retry budget, the engine skips it and the composition continues; the
    run completes *degraded* and each skipped activity costs
    ``utility_penalty_per_skip`` (a fraction of the plan's utility) in the
    :class:`~repro.resilience.degradation.PartialExecutionReport`.
    """

    enabled: bool = True
    utility_penalty_per_skip: float = 0.15

    def __post_init__(self) -> None:
        if not 0.0 <= self.utility_penalty_per_skip <= 1.0:
            raise ExecutionError("utility penalty per skip must be in [0, 1]")


@dataclass(frozen=True)
class ResilienceConfig:
    """The middleware-level resilience knob (``MiddlewareConfig.resilience``).

    Off by default: the fault-free hot path then runs exactly the
    pre-resilience code (a handful of ``is None`` checks).  With
    ``enabled`` the middleware builds a per-service breaker registry and
    hands the retry/timeout/degradation policies to the binder and engine.
    """

    enabled: bool = False
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    timeout: TimeoutPolicy = field(default_factory=TimeoutPolicy)
    breaker: CircuitBreakerPolicy = field(default_factory=CircuitBreakerPolicy)
    degradation: DegradationPolicy = field(default_factory=DegradationPolicy)
