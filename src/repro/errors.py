"""Exception hierarchy for the QASOM middleware reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so user
code can catch middleware failures with a single ``except`` clause while more
specific handlers remain possible.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the library."""


class OntologyError(ReproError):
    """Raised for malformed ontology definitions or unknown concepts."""


class UnknownConceptError(OntologyError):
    """A concept URI was referenced but never declared in the ontology."""

    def __init__(self, uri: str) -> None:
        super().__init__(f"unknown concept: {uri!r}")
        self.uri = uri

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the formatted
        # message) through __init__, which double-wraps it; rebuild from
        # the original constructor argument instead.  Exceptions cross
        # process boundaries on the runtime's process backend.
        return (type(self), (self.uri,))


class UnitError(ReproError):
    """Raised when two QoS values with incompatible units are combined."""


class QoSModelError(ReproError):
    """Raised for inconsistent QoS model definitions (duplicate properties,
    contradictory monotonicity, unmappable user terms...)."""


class ServiceDescriptionError(ReproError):
    """Raised when a service description is malformed."""


class DiscoveryError(ReproError):
    """Raised when QoS-aware discovery cannot be performed."""


class CompositionError(ReproError):
    """Base class for composition-stage failures."""


class InvalidTaskError(CompositionError):
    """The user task structure is malformed (empty patterns, duplicate
    activity names, unbound loop probabilities...)."""


class NoCandidateError(CompositionError):
    """An abstract activity has no functionally matching service candidate,
    so no composition can fulfil the task."""

    def __init__(self, activity: str) -> None:
        super().__init__(f"no service candidate for activity {activity!r}")
        self.activity = activity

    def __reduce__(self):
        # See UnknownConceptError.__reduce__: keep the round-tripped
        # message identical to the original's (process-backend transport).
        return (type(self), (self.activity,))


class SelectionError(CompositionError):
    """QoS-aware selection could not produce a composition that satisfies the
    user's global QoS constraints."""


class AggregationError(CompositionError):
    """Raised when a QoS property cannot be aggregated over a pattern."""


class ExecutionError(ReproError):
    """Raised when executing a concrete composition fails irrecoverably."""


class BindingError(ExecutionError):
    """Dynamic binding found no live service for an activity at invoke time."""


class AdaptationError(ReproError):
    """Base class for adaptation-stage failures."""


class SubstitutionError(AdaptationError):
    """Service substitution found no satisfactory replacement."""


class BehaviouralAdaptationError(AdaptationError):
    """No alternative behaviour in the task class can fulfil the user task."""


class BpelParseError(ReproError):
    """Raised when an abstract-BPEL document cannot be parsed."""


class EnvironmentError_(ReproError):
    """Raised for invalid pervasive-environment manipulations (duplicate
    device identifiers, unknown nodes...)."""


class MiddlewareRuntimeError(ReproError):
    """Base class for concurrent-runtime failures (admission, deadlines,
    lifecycle misuse).  See :mod:`repro.runtime`."""


class AdmissionRejectedError(MiddlewareRuntimeError):
    """The runtime's admission queue was full and the request was rejected
    at submit time (backpressure)."""


class DeadlineExceededError(MiddlewareRuntimeError):
    """The request's deadline elapsed before the runtime could complete it
    (while queued, or before its execution turn came up)."""


class RuntimeShutdownError(MiddlewareRuntimeError):
    """The runtime was shut down before (or while) the request could be
    processed."""


class WorkerCrashError(MiddlewareRuntimeError):
    """A worker thread died while holding this request and the supervisor
    could not (or was not allowed to) requeue it — the requeue budget was
    exhausted, the bounded requeue count was reached, or the crash landed
    mid-commit where re-execution would not be safe."""


class WorkerProcessCrash(WorkerCrashError):
    """A worker *process* of the process execution backend died mid-compose
    (killed, OOM, or a crash in the child interpreter).  Transient by
    contract: the backend respawns the process and the runtime requeues the
    request under its original admission ticket (budget permitting); when
    the requeue is refused, the handle fails with this error — still a
    :class:`WorkerCrashError`, so callers need not care which backend's
    worker died."""


class UnsupportedBackendFeatureError(MiddlewareRuntimeError):
    """A runtime feature was requested on an execution backend that cannot
    honour it (e.g. chaos injection, the flight recorder or cross-layer
    estimation on the process backend, which cannot share parent-side
    mutable state with its workers).  Raised at construction time — never a
    silent no-op."""


class RuntimeInvariantError(MiddlewareRuntimeError):
    """A runtime safety invariant was violated (request lost, commit
    duplicated or out of ticket order, worker pool not restored) — raised
    by :func:`repro.runtime.chaos.assert_runtime_invariants`."""
