"""QoS-aware semantic service discovery (Chapter II §3).

Discovery matches a *required activity* against the registry along two axes:

1. **Functional matching** — the required capability concept vs the offered
   one, graded with :class:`repro.semantics.MatchDegree`.  Semantic matching
   (through a task ontology) widens the candidate spectrum compared with
   syntactic lookup: a request for ``task:Payment`` is satisfied by a
   ``task:CardPayment`` service (PLUGIN).  IOPE compatibility is checked when
   the query specifies inputs/outputs.
2. **QoS filtering** — *local* QoS constraints attached to the query prune
   candidates whose advertised QoS already violates them (global constraints
   are the selection algorithm's job, not discovery's).

Results are ranked by (match degree, QoS utility-free score) so callers can
truncate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import DiscoveryError
from repro.observability import core as observability_core
from repro.semantics.matching import MatchCache, MatchDegree
from repro.semantics.ontology import Ontology
from repro.services.description import ServiceDescription
from repro.services.registry import ServiceRegistry


#: Candidate-pool-size buckets for the discovery histogram (counts, not
#: seconds — the shared default buckets are latency-shaped).
_POOL_BUCKETS = (0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)


@dataclass(frozen=True)
class QoSConstraint:
    """A bound on one QoS property: ``response_time <= 500`` etc.

    ``operator`` is ``"<="`` or ``">="``; values are in the property's
    canonical unit.  See :mod:`repro.composition.request` for the
    user-request-level (global) constraints, which reuse this class.
    """

    property_name: str
    operator: str
    bound: float

    def __post_init__(self) -> None:
        if self.operator not in ("<=", ">="):
            raise DiscoveryError(
                f"unsupported constraint operator {self.operator!r}"
            )

    def satisfied_by(self, value: float) -> bool:
        if self.operator == "<=":
            return value <= self.bound
        return value >= self.bound

    def slack(self, value: float) -> float:
        """Signed margin to the bound; positive means satisfied with room."""
        if self.operator == "<=":
            return self.bound - value
        return value - self.bound

    def __str__(self) -> str:
        return f"{self.property_name} {self.operator} {self.bound:g}"


@dataclass(frozen=True)
class DiscoveryQuery:
    """One abstract activity to resolve against the environment."""

    capability: str
    inputs: FrozenSet[str] = frozenset()
    outputs: FrozenSet[str] = frozenset()
    local_constraints: Tuple[QoSConstraint, ...] = ()
    minimum_degree: MatchDegree = MatchDegree.PLUGIN


@dataclass(frozen=True)
class DiscoveryMatch:
    """One discovery result: the service plus how well it matched."""

    service: ServiceDescription
    degree: MatchDegree


class QoSAwareDiscovery:
    """Semantic, QoS-filtered discovery over a :class:`ServiceRegistry`.

    ``task_ontology`` holds the capability/IOPE concepts.  When it is
    ``None``, matching degrades gracefully to syntactic equality (degree
    EXACT or FAIL), which is what a legacy UDDI-style directory would do.
    """

    def __init__(
        self,
        registry: ServiceRegistry,
        task_ontology: Optional[Ontology] = None,
        observability=None,
        match_cache: Optional[MatchCache] = None,
    ) -> None:
        self.registry = registry
        self.ontology = task_ontology
        #: Memoised concept grading, shared with translation/adaptation when
        #: the caller passes one in.  Ontology mutations flush it through the
        #: ``Ontology.invalidate_caches`` generation counter.
        self.match_cache: Optional[MatchCache] = None
        if task_ontology is not None:
            self.match_cache = (
                match_cache
                if match_cache is not None
                else MatchCache(task_ontology)
            )
        self.obs = observability_core.resolve(observability)

    # ------------------------------------------------------------------
    def discover(self, query: DiscoveryQuery) -> List[DiscoveryMatch]:
        """All registry services satisfying the query, best matches first."""
        cache = self.match_cache
        hits_before = cache.hits if cache is not None else 0
        misses_before = cache.misses if cache is not None else 0
        matches: List[DiscoveryMatch] = []
        examined = 0
        for service in self._candidate_pool(query):
            examined += 1
            degree = self._functional_degree(query.capability, service.capability)
            if degree < query.minimum_degree:
                continue
            if not self._iope_compatible(query, service):
                continue
            if not self._qos_admissible(query, service):
                continue
            matches.append(DiscoveryMatch(service, degree))
        matches.sort(key=lambda m: (-m.degree, m.service.name, m.service.service_id))
        obs = self.obs
        if obs.enabled:
            obs.counter("discovery_queries_total").inc()
            obs.counter("discovery_services_examined_total").inc(examined)
            obs.histogram(
                "discovery_pool_size", buckets=_POOL_BUCKETS
            ).observe(len(matches))
            if cache is not None:
                obs.counter("semantic_match_cache_hits_total").inc(
                    cache.hits - hits_before
                )
                obs.counter("semantic_match_cache_misses_total").inc(
                    cache.misses - misses_before
                )
        return matches

    def candidates(self, query: DiscoveryQuery) -> List[ServiceDescription]:
        """Just the services, best matches first (selection entry point)."""
        return [m.service for m in self.discover(query)]

    # ------------------------------------------------------------------
    def _candidate_pool(self, query: DiscoveryQuery) -> List[ServiceDescription]:
        """Services whose *capability concept* can satisfy the query.

        Grades each distinct advertised capability once (memoised across
        queries by the match cache) and expands the survivors through the
        registry's capability index, instead of re-grading every advertised
        service per activity.  With ``minimum_degree == FAIL`` everything
        passes, which degrades to the old full scan.
        """
        pool: List[ServiceDescription] = []
        for capability in sorted(self.registry.capabilities()):
            degree = self._functional_degree(query.capability, capability)
            if degree >= query.minimum_degree:
                pool.extend(self.registry.by_capability(capability))
        return pool

    def _functional_degree(self, required: str, offered: str) -> MatchDegree:
        if self.ontology is None or not (
            self.ontology.is_class(required) and self.ontology.is_class(offered)
        ):
            return MatchDegree.EXACT if required == offered else MatchDegree.FAIL
        assert self.match_cache is not None
        return self.match_cache.match(required, offered)

    def _iope_compatible(
        self, query: DiscoveryQuery, service: ServiceDescription
    ) -> bool:
        """The service must accept the query's inputs and produce its outputs.

        Each required output must be matched (semantically, PLUGIN or better)
        by some service output; each service *required* input must be
        coverable by the query's provided inputs.  Empty sets impose nothing.
        """
        for required_output in query.outputs:
            if not any(
                self._functional_degree(required_output, offered).satisfies
                for offered in service.outputs
            ):
                return False
        for needed_input in service.inputs:
            if query.inputs and not any(
                self._functional_degree(needed_input, provided).satisfies
                for provided in query.inputs
            ):
                return False
        return True

    @staticmethod
    def _qos_admissible(query: DiscoveryQuery, service: ServiceDescription) -> bool:
        for constraint in query.local_constraints:
            value = service.advertised_qos.get(constraint.property_name)
            if value is None:
                # Advertising nothing for a constrained property is a miss:
                # the middleware cannot assume compliance.
                return False
            if not constraint.satisfied_by(value):
                return False
        return True
