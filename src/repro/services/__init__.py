"""Service descriptions, registry and QoS-aware discovery (S3).

Pervasive environments are populated by networked services advertised by
heterogeneous providers.  This package provides:

* :mod:`repro.services.description` — quality-based service descriptions
  (QSD): functional capability concepts, IOPE signatures, optional
  conversations (white-box QSD) and advertised QoS vectors;
* :mod:`repro.services.registry` — the service directory of the environment
  (the "shopping platform directory" of the scenarios);
* :mod:`repro.services.discovery` — QoS-aware semantic discovery, matching a
  required activity (capability + QoS constraints) against the registry;
* :mod:`repro.services.generator` — synthetic service populations with QoS
  drawn from uniform or normal distributions, as used by the paper's
  evaluation (Fig. VI.9).
"""

from repro.services.description import (
    Conversation,
    Operation,
    ServiceDescription,
)
from repro.services.discovery import DiscoveryQuery, QoSAwareDiscovery
from repro.services.generator import ServiceGenerator, QoSDistribution
from repro.services.registry import ServiceRegistry

__all__ = [
    "Conversation",
    "DiscoveryQuery",
    "Operation",
    "QoSAwareDiscovery",
    "QoSDistribution",
    "ServiceDescription",
    "ServiceGenerator",
    "ServiceRegistry",
]
