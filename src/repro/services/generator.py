"""Synthetic service populations (evaluation workload substrate).

The paper's experiments (Ch. VI §3.1) run against generated service sets:
each abstract activity gets N candidate services whose QoS values are drawn
from either a uniform law over the property's range or — for the
constraint-tightness experiments of Fig. VI.9-11 — the normal law
``N(m, sigma)``.  This module reproduces that generator with deterministic
seeding so every benchmark run is repeatable.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.qos.properties import QoSProperty, STANDARD_PROPERTIES
from repro.qos.values import QoSVector
from repro.services.description import ServiceDescription


class QoSDistribution(enum.Enum):
    """Law used to draw a property's value for one synthetic service."""

    UNIFORM = "uniform"
    NORMAL = "normal"


@dataclass(frozen=True)
class NormalLaw:
    """Parameters of the normal law for one property (Fig. VI.9)."""

    mean: float
    stddev: float


class ServiceGenerator:
    """Deterministic generator of synthetic service populations.

    Parameters
    ----------
    properties:
        The QoS property set every generated service advertises.
    distribution:
        Value law; UNIFORM draws over each property's ``value_range``,
        NORMAL draws from per-property :class:`NormalLaw` parameters
        (defaulting to mid-range mean, sixth-of-range stddev, clipped to the
        range so availability never exceeds 1).
    seed:
        RNG seed; identical seeds give identical populations.
    """

    #: Properties treated as the *price paid* for quality when generating
    #: tradeoff-structured populations.
    PRICE_LIKE = frozenset({"cost", "energy"})

    def __init__(
        self,
        properties: Optional[Mapping[str, QoSProperty]] = None,
        distribution: QoSDistribution = QoSDistribution.UNIFORM,
        normal_laws: Optional[Mapping[str, NormalLaw]] = None,
        seed: int = 0,
        tradeoff: float = 0.0,
    ) -> None:
        if not 0.0 <= tradeoff <= 1.0:
            raise ValueError("tradeoff must lie in [0, 1]")
        self.properties: Dict[str, QoSProperty] = dict(
            properties if properties is not None else STANDARD_PROPERTIES
        )
        self.distribution = distribution
        self.tradeoff = tradeoff
        self._rng = random.Random(seed)
        self._laws: Dict[str, NormalLaw] = {}
        for name, prop in self.properties.items():
            if normal_laws and name in normal_laws:
                self._laws[name] = normal_laws[name]
            else:
                lo, hi = prop.value_range
                self._laws[name] = NormalLaw(
                    mean=(lo + hi) / 2.0, stddev=(hi - lo) / 6.0
                )

    # ------------------------------------------------------------------
    def law(self, property_name: str) -> NormalLaw:
        """The normal-law parameters (m, sigma) used for one property."""
        return self._laws[property_name]

    def draw_value(self, prop: QoSProperty) -> float:
        """Draw one value for one property under the configured law."""
        lo, hi = prop.value_range
        if self.distribution is QoSDistribution.UNIFORM:
            return self._rng.uniform(lo, hi)
        law = self._laws[prop.name]
        value = self._rng.gauss(law.mean, law.stddev)
        return min(max(value, lo), hi)

    def draw_vector(self) -> QoSVector:
        """Draw one full QoS vector over the configured property set.

        With ``tradeoff`` > 0, a latent service *grade* g in [0, 1] couples
        the dimensions: quality properties improve with g while price-like
        properties (cost, energy) worsen — the "you get what you pay for"
        structure real markets exhibit, which keeps most candidates on the
        Pareto front.  Each value is a mix of the grade-anchored point and
        the independent law, weighted by the tradeoff strength.
        """
        if self.tradeoff <= 0.0:
            return QoSVector(
                {name: self.draw_value(prop)
                 for name, prop in self.properties.items()},
                self.properties,
            )
        grade = self._rng.random()
        values: Dict[str, float] = {}
        for name, prop in self.properties.items():
            lo, hi = prop.value_range
            quality_fraction = (
                1.0 - grade if name in self.PRICE_LIKE else grade
            )
            from repro.qos.properties import Direction

            if prop.direction is Direction.NEGATIVE:
                anchored = hi - quality_fraction * (hi - lo)
            else:
                anchored = lo + quality_fraction * (hi - lo)
            independent = self.draw_value(prop)
            values[name] = (
                self.tradeoff * anchored + (1.0 - self.tradeoff) * independent
            )
        return QoSVector(values, self.properties)

    # ------------------------------------------------------------------
    def service(
        self,
        capability: str,
        name: Optional[str] = None,
        provider: str = "synthetic",
        host_device: Optional[str] = None,
    ) -> ServiceDescription:
        """Generate one service advertising the given capability."""
        qos = self.draw_vector()
        return ServiceDescription(
            name=name or f"{capability.split(':')[-1]}-{self._rng.randrange(1 << 30):x}",
            capability=capability,
            advertised_qos=qos,
            provider=provider,
            host_device=host_device,
        )

    def candidates(
        self, capability: str, count: int, provider: str = "synthetic"
    ) -> List[ServiceDescription]:
        """Generate ``count`` functionally equivalent candidate services."""
        return [
            self.service(capability, name=f"{capability.split(':')[-1]}-{i:04d}",
                         provider=provider)
            for i in range(count)
        ]

    def population(
        self,
        capabilities: Sequence[str],
        services_per_capability: int,
    ) -> Dict[str, List[ServiceDescription]]:
        """Candidate sets for a whole task: one list per abstract activity.

        This is the exact workload shape of the Ch. VI experiments
        (``n`` activities × ``N`` services per activity).
        """
        return {
            capability: self.candidates(capability, services_per_capability)
            for capability in capabilities
        }

    def sample_values(self, property_name: str, count: int) -> List[float]:
        """Raw value samples for one property (used to plot Fig. VI.9)."""
        prop = self.properties[property_name]
        return [self.draw_value(prop) for _ in range(count)]
