"""White-box QSD: deriving service-level QoS from conversations (§II.2.2).

A white-box service description attaches QoS to the *operations* of its
conversation rather than (or in addition to) the service as a whole.  To
take part in selection — which reasons over one vector per service — the
per-operation values must be folded over the conversation's flow DAG:

* time-like additive properties follow the **critical path** (operations
  not ordered by the flow run concurrently);
* resource-like additive properties (cost, energy) sum over *all*
  operations;
* multiplicative properties multiply over all operations;
* min/max/average fold over all operations.

:func:`aggregate_conversation` computes the folded vector and
:func:`effective_qos` merges it under the service's explicit advertisement
(explicit black-box claims win — the provider knows best what it contracted).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Set

from repro.errors import ServiceDescriptionError
from repro.qos.properties import AggregationKind, QoSProperty
from repro.qos.values import QoSVector
from repro.services.description import Conversation, Operation, ServiceDescription


def _critical_path(conversation: Conversation, values: Mapping[str, float]) -> float:
    """Longest (sum-weighted) path through the conversation's flow DAG."""
    successors: Dict[str, Set[str]] = {op.name: set() for op in conversation.operations}
    in_degree: Dict[str, int] = {op.name: 0 for op in conversation.operations}
    for pred, succ in conversation.flow:
        if succ not in successors[pred]:
            successors[pred].add(succ)
            in_degree[succ] += 1

    # Kahn order with longest-distance relaxation.
    distance = {name: values.get(name, 0.0) for name in successors}
    ready = [name for name, deg in in_degree.items() if deg == 0]
    order: List[str] = []
    while ready:
        current = ready.pop()
        order.append(current)
        for succ in successors[current]:
            candidate = distance[current] + values.get(succ, 0.0)
            if candidate > distance[succ]:
                distance[succ] = candidate
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                ready.append(succ)
    if len(order) != len(successors):
        raise ServiceDescriptionError(
            "conversation flow contains a cycle; cannot fold QoS"
        )
    return max(distance.values()) if distance else 0.0


def aggregate_conversation(
    conversation: Conversation,
    properties: Mapping[str, QoSProperty],
) -> QoSVector:
    """Fold per-operation QoS into one service-level vector.

    Only properties for which *every* operation declares a value are folded
    — a partial declaration gives no sound service-level guarantee.
    """
    foldable = [
        name
        for name, prop in properties.items()
        if all(
            op.qos is not None and name in op.qos
            for op in conversation.operations
        )
    ]
    values: Dict[str, float] = {}
    for name in foldable:
        prop = properties[name]
        per_op = {
            op.name: op.qos[name]  # type: ignore[index]
            for op in conversation.operations
        }
        kind = prop.aggregation
        if kind is AggregationKind.ADDITIVE:
            if prop.unit.dimension == "time":
                values[name] = _critical_path(conversation, per_op)
            else:
                values[name] = sum(per_op.values())
        elif kind is AggregationKind.MULTIPLICATIVE:
            values[name] = math.prod(per_op.values())
        elif kind is AggregationKind.MIN:
            values[name] = min(per_op.values())
        elif kind is AggregationKind.MAX:
            values[name] = max(per_op.values())
        else:  # AVERAGE
            values[name] = sum(per_op.values()) / len(per_op)
    return QoSVector(values, {n: properties[n] for n in values})


def effective_qos(
    service: ServiceDescription,
    properties: Mapping[str, QoSProperty],
) -> QoSVector:
    """The service's QoS as selection should see it.

    Black-box services return their advertisement unchanged.  White-box
    services get conversation-folded values for any property the
    advertisement does not cover explicitly (explicit claims win).
    """
    if service.conversation is None:
        return service.advertised_qos
    folded = aggregate_conversation(service.conversation, properties)
    merged: Dict[str, float] = {name: folded[name] for name in folded}
    merged.update({name: service.advertised_qos[name]
                   for name in service.advertised_qos})
    all_props = dict(folded.properties())
    all_props.update(service.advertised_qos.properties())
    return QoSVector(merged, all_props)


def with_effective_qos(
    service: ServiceDescription,
    properties: Mapping[str, QoSProperty],
) -> ServiceDescription:
    """A copy of the service advertising its effective (merged) QoS."""
    return service.with_qos(effective_qos(service, properties))
