"""Quality-based service descriptions (QSD, Chapter II §2.2).

A :class:`ServiceDescription` is what a provider publishes into the
environment's registry.  It carries:

* a *capability* concept anchoring the service's functionality in a task
  ontology (semantic, so discovery can reason over it),
* IOPE signatures — Inputs, Outputs, Preconditions, Effects — as concept
  URIs,
* the advertised QoS vector (black-box QSD), and optionally per-operation
  QoS over a conversation (white-box QSD),
* provider/host metadata used by the environment simulator (which device
  hosts the service, whether it is currently reachable).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import ServiceDescriptionError
from repro.qos.values import QoSVector

_service_counter = itertools.count(1)


@dataclass(frozen=True)
class Operation:
    """One elementary operation of a white-box service conversation."""

    name: str
    capability: str
    inputs: FrozenSet[str] = frozenset()
    outputs: FrozenSet[str] = frozenset()
    qos: Optional[QoSVector] = None


@dataclass(frozen=True)
class Conversation:
    """The observable behaviour of a white-box service.

    ``flow`` lists (predecessor, successor) operation-name pairs; an empty
    flow with multiple operations means they are independent.
    """

    operations: Tuple[Operation, ...]
    flow: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        names = [op.name for op in self.operations]
        if len(names) != len(set(names)):
            raise ServiceDescriptionError("duplicate operation names in conversation")
        known = set(names)
        for pred, succ in self.flow:
            if pred not in known or succ not in known:
                raise ServiceDescriptionError(
                    f"flow edge ({pred!r}, {succ!r}) references unknown operation"
                )

    def operation(self, name: str) -> Operation:
        for op in self.operations:
            if op.name == name:
                return op
        raise ServiceDescriptionError(f"no operation named {name!r}")


@dataclass
class ServiceDescription:
    """A published pervasive service.

    ``advertised_qos`` is the provider's claim; the *run-time* QoS observed
    by the monitor may differ (that gap is exactly what QoS-driven adaptation
    compensates, Chapter V).
    """

    name: str
    capability: str
    advertised_qos: QoSVector
    inputs: FrozenSet[str] = frozenset()
    outputs: FrozenSet[str] = frozenset()
    preconditions: FrozenSet[str] = frozenset()
    effects: FrozenSet[str] = frozenset()
    conversation: Optional[Conversation] = None
    provider: str = "unknown"
    host_device: Optional[str] = None
    service_id: str = field(default="")

    def __post_init__(self) -> None:
        if not self.name:
            raise ServiceDescriptionError("service name must be non-empty")
        if not self.capability:
            raise ServiceDescriptionError("service capability must be non-empty")
        if not self.service_id:
            self.service_id = f"svc-{next(_service_counter):06d}"

    @property
    def is_white_box(self) -> bool:
        """True when the provider published a behavioural (conversation) QSD."""
        return self.conversation is not None

    def qos(self, name: str) -> float:
        """Advertised value for one QoS property."""
        return self.advertised_qos[name]

    def with_qos(self, qos: QoSVector) -> "ServiceDescription":
        """A copy advertising a different QoS vector (used to model providers
        republishing after a capability change)."""
        return ServiceDescription(
            name=self.name,
            capability=self.capability,
            advertised_qos=qos,
            inputs=self.inputs,
            outputs=self.outputs,
            preconditions=self.preconditions,
            effects=self.effects,
            conversation=self.conversation,
            provider=self.provider,
            host_device=self.host_device,
            service_id=self.service_id,
        )

    def __hash__(self) -> int:
        return hash(self.service_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ServiceDescription):
            return NotImplemented
        return self.service_id == other.service_id

    def __repr__(self) -> str:
        return (
            f"ServiceDescription({self.name!r}, capability={self.capability!r}, "
            f"id={self.service_id!r})"
        )
