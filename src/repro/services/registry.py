"""The service directory of a pervasive environment.

Providers publish :class:`~repro.services.description.ServiceDescription`
entries; the registry indexes them by capability concept and by identifier,
and exposes a small pub/sub hook so the middleware's monitoring and
adaptation frameworks learn about churn (services joining/leaving) — the
paper's environments are dynamic and selection results can be invalidated by
departures.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set

from repro.errors import ServiceDescriptionError
from repro.services.description import ServiceDescription

RegistryListener = Callable[[str, ServiceDescription], None]
#: Events delivered to listeners.
EVENT_PUBLISHED = "published"
EVENT_WITHDRAWN = "withdrawn"
EVENT_UPDATED = "updated"


class ServiceRegistry:
    """An in-memory, capability-indexed service directory."""

    def __init__(self) -> None:
        self._by_id: Dict[str, ServiceDescription] = {}
        self._by_capability: Dict[str, Set[str]] = {}
        self._listeners: List[RegistryListener] = []

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, service_id: str) -> bool:
        return service_id in self._by_id

    def __iter__(self) -> Iterator[ServiceDescription]:
        return iter(list(self._by_id.values()))

    # ------------------------------------------------------------------
    def publish(self, service: ServiceDescription) -> ServiceDescription:
        """Add a service to the directory.

        Re-publishing the same ``service_id`` replaces the previous entry and
        fires an ``updated`` event (providers refresh their advertised QoS
        this way).
        """
        previous = self._by_id.get(service.service_id)
        if previous is not None:
            self._unindex(previous)
        self._by_id[service.service_id] = service
        self._by_capability.setdefault(service.capability, set()).add(
            service.service_id
        )
        self._notify(EVENT_UPDATED if previous else EVENT_PUBLISHED, service)
        return service

    def publish_all(self, services: Iterable[ServiceDescription]) -> None:
        for service in services:
            self.publish(service)

    def withdraw(self, service_id: str) -> ServiceDescription:
        """Remove a service (provider left the environment)."""
        try:
            service = self._by_id.pop(service_id)
        except KeyError:
            raise ServiceDescriptionError(
                f"cannot withdraw unknown service {service_id!r}"
            ) from None
        self._unindex(service, drop_id=False)
        self._notify(EVENT_WITHDRAWN, service)
        return service

    def get(self, service_id: str) -> Optional[ServiceDescription]:
        return self._by_id.get(service_id)

    def require(self, service_id: str) -> ServiceDescription:
        service = self._by_id.get(service_id)
        if service is None:
            raise ServiceDescriptionError(f"unknown service {service_id!r}")
        return service

    def by_capability(self, capability: str) -> List[ServiceDescription]:
        """All services advertising exactly this capability concept.

        Semantic (subsumption-aware) lookup lives in
        :class:`repro.services.discovery.QoSAwareDiscovery`; the registry
        itself is purely syntactic, as a real directory would be.
        """
        ids = self._by_capability.get(capability, set())
        return [self._by_id[i] for i in ids if i in self._by_id]

    def capabilities(self) -> Set[str]:
        return {c for c, ids in self._by_capability.items() if ids}

    def services(self) -> List[ServiceDescription]:
        return list(self._by_id.values())

    # ------------------------------------------------------------------
    def subscribe(self, listener: RegistryListener) -> Callable[[], None]:
        """Register a churn listener; returns an unsubscribe callable."""
        self._listeners.append(listener)

        def unsubscribe() -> None:
            if listener in self._listeners:
                self._listeners.remove(listener)

        return unsubscribe

    def _notify(self, event: str, service: ServiceDescription) -> None:
        for listener in list(self._listeners):
            listener(event, service)

    def _unindex(self, service: ServiceDescription, drop_id: bool = True) -> None:
        ids = self._by_capability.get(service.capability)
        if ids is not None:
            ids.discard(service.service_id)
            if not ids:
                del self._by_capability[service.capability]
        if drop_id:
            self._by_id.pop(service.service_id, None)
