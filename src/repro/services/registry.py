"""The service directory of a pervasive environment.

Providers publish :class:`~repro.services.description.ServiceDescription`
entries; the registry indexes them by capability concept and by identifier,
and exposes a small pub/sub hook so the middleware's monitoring and
adaptation frameworks learn about churn (services joining/leaving) — the
paper's environments are dynamic and selection results can be invalidated by
departures.

Two guarantees matter to callers that overlap reads with churn:

* every read accessor (:meth:`~ServiceRegistry.by_capability`,
  :meth:`~ServiceRegistry.capabilities`, :meth:`~ServiceRegistry.services`,
  iteration) returns a **materialised** copy, never a live dict/set view —
  a candidate list held across a churn event stays iterable and stable;
* every mutation bumps :attr:`~ServiceRegistry.generation`, so callers can
  detect churn cheaply and :meth:`~ServiceRegistry.snapshot` can be cached
  copy-on-write (the runtime's snapshot-isolation layer builds on this —
  see :mod:`repro.runtime.snapshot`).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import ServiceDescriptionError
from repro.services.description import ServiceDescription

RegistryListener = Callable[[str, ServiceDescription], None]
#: Events delivered to listeners.
EVENT_PUBLISHED = "published"
EVENT_WITHDRAWN = "withdrawn"
EVENT_UPDATED = "updated"


class RegistrySnapshot:
    """An immutable, materialised view of a registry at one generation.

    Exposes the registry's read surface (:meth:`by_capability`,
    :meth:`capabilities`, :meth:`services`, :meth:`get`, containment,
    iteration) over copied indexes, so discovery can run against it while
    churn proceeds on the live registry — the snapshot never changes.
    Obtain one from :meth:`ServiceRegistry.snapshot`.
    """

    __slots__ = ("generation", "_by_id", "_by_capability")

    def __init__(
        self,
        generation: int,
        by_id: Dict[str, ServiceDescription],
        by_capability: Dict[str, Tuple[str, ...]],
    ) -> None:
        self.generation = generation
        self._by_id = by_id
        self._by_capability = by_capability

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, service_id: str) -> bool:
        return service_id in self._by_id

    def __iter__(self) -> Iterator[ServiceDescription]:
        return iter(list(self._by_id.values()))

    def get(self, service_id: str) -> Optional[ServiceDescription]:
        """The description published under ``service_id``, if any."""
        return self._by_id.get(service_id)

    def by_capability(self, capability: str) -> List[ServiceDescription]:
        """Services advertising exactly this capability at snapshot time."""
        ids = self._by_capability.get(capability, ())
        return [self._by_id[i] for i in ids]

    def capabilities(self) -> Set[str]:
        """Capability concepts with at least one provider at snapshot time."""
        return set(self._by_capability)

    def services(self) -> List[ServiceDescription]:
        """Every service visible in this snapshot."""
        return list(self._by_id.values())

    def __repr__(self) -> str:
        return (
            f"RegistrySnapshot(generation={self.generation}, "
            f"services={len(self._by_id)})"
        )


class ServiceRegistry:
    """An in-memory, capability-indexed service directory."""

    def __init__(self) -> None:
        self._by_id: Dict[str, ServiceDescription] = {}
        self._by_capability: Dict[str, Set[str]] = {}
        self._listeners: List[RegistryListener] = []
        self._generation = 0

    @property
    def generation(self) -> int:
        """Monotonic mutation counter: bumped by every publish/withdraw.

        Equal generations imply identical directory contents, so callers
        (snapshot managers, discovery batchers) can cache derived state
        keyed by generation and invalidate on change.
        """
        return self._generation

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, service_id: str) -> bool:
        return service_id in self._by_id

    def __iter__(self) -> Iterator[ServiceDescription]:
        return iter(list(self._by_id.values()))

    # ------------------------------------------------------------------
    def publish(self, service: ServiceDescription) -> ServiceDescription:
        """Add a service to the directory.

        Re-publishing the same ``service_id`` replaces the previous entry and
        fires an ``updated`` event (providers refresh their advertised QoS
        this way).
        """
        previous = self._by_id.get(service.service_id)
        if previous is not None:
            self._unindex(previous)
        self._by_id[service.service_id] = service
        self._by_capability.setdefault(service.capability, set()).add(
            service.service_id
        )
        self._generation += 1
        self._notify(EVENT_UPDATED if previous else EVENT_PUBLISHED, service)
        return service

    def publish_all(self, services: Iterable[ServiceDescription]) -> None:
        for service in services:
            self.publish(service)

    def withdraw(self, service_id: str) -> ServiceDescription:
        """Remove a service (provider left the environment)."""
        try:
            service = self._by_id.pop(service_id)
        except KeyError:
            raise ServiceDescriptionError(
                f"cannot withdraw unknown service {service_id!r}"
            ) from None
        self._unindex(service, drop_id=False)
        self._generation += 1
        self._notify(EVENT_WITHDRAWN, service)
        return service

    def get(self, service_id: str) -> Optional[ServiceDescription]:
        return self._by_id.get(service_id)

    def require(self, service_id: str) -> ServiceDescription:
        service = self._by_id.get(service_id)
        if service is None:
            raise ServiceDescriptionError(f"unknown service {service_id!r}")
        return service

    def by_capability(self, capability: str) -> List[ServiceDescription]:
        """All services advertising exactly this capability concept.

        Semantic (subsumption-aware) lookup lives in
        :class:`repro.services.discovery.QoSAwareDiscovery`; the registry
        itself is purely syntactic, as a real directory would be.

        The returned list is a materialised snapshot: the index set is
        copied before expansion, so churn fired mid-call (by a registry
        listener, or another thread) can neither corrupt the iteration nor
        leave the caller holding a half-mutated view.
        """
        ids = tuple(self._by_capability.get(capability, ()))
        by_id = self._by_id
        return [by_id[i] for i in ids if i in by_id]

    def capabilities(self) -> Set[str]:
        """Capability concepts with at least one registered provider
        (materialised — safe to hold across churn)."""
        return {c for c, ids in list(self._by_capability.items()) if ids}

    def services(self) -> List[ServiceDescription]:
        """Every registered service, as a materialised list."""
        return list(self._by_id.values())

    def snapshot(self) -> RegistrySnapshot:
        """A consistent, immutable copy of the whole directory.

        The copy is re-taken until the generation is stable across the
        read, so a snapshot never interleaves with a concurrent publish or
        withdraw (single-writer registries converge on the first pass).
        """
        while True:
            generation = self._generation
            by_id = dict(self._by_id)
            by_capability = {
                capability: tuple(ids)
                for capability, ids in list(self._by_capability.items())
                if ids
            }
            if self._generation == generation:
                return RegistrySnapshot(generation, by_id, by_capability)

    # ------------------------------------------------------------------
    def subscribe(self, listener: RegistryListener) -> Callable[[], None]:
        """Register a churn listener; returns an unsubscribe callable."""
        self._listeners.append(listener)

        def unsubscribe() -> None:
            if listener in self._listeners:
                self._listeners.remove(listener)

        return unsubscribe

    def _notify(self, event: str, service: ServiceDescription) -> None:
        for listener in list(self._listeners):
            listener(event, service)

    def _unindex(self, service: ServiceDescription, drop_id: bool = True) -> None:
        ids = self._by_capability.get(service.capability)
        if ids is not None:
            ids.discard(service.service_id)
            if not ids:
                del self._by_capability[service.capability]
        if drop_id:
            self._by_id.pop(service.service_id, None)
