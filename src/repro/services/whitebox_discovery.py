"""White-box service discovery: matching required behaviour (§II.3).

Black-box discovery matches profiles; *white-box* discovery additionally
checks that the service's observable **conversation** supports the
execution pattern the requester needs — "the way it is fulfilled, not only
what is fulfilled".  PERSE and METEOR-S do this with conversation/protocol
matching; here we reduce it to the same machinery behavioural adaptation
uses: the required behaviour and the service conversation both become
labelled graphs, and the requirement must embed into the conversation under
the extended subgraph homeomorphism (semantic operation labels, extra
provider-side operations allowed, order preserved).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.adaptation.behaviour_graph import BehaviouralGraph, Vertex, task_to_graph
from repro.adaptation.homeomorphism import (
    HomeomorphismConfig,
    HomeomorphismResult,
    find_homeomorphism,
)
from repro.composition.task import Task
from repro.semantics.ontology import Ontology
from repro.services.description import Conversation, ServiceDescription
from repro.services.discovery import (
    DiscoveryQuery,
    QoSAwareDiscovery,
)


def conversation_to_graph(
    conversation: Conversation, name: str = "conversation"
) -> BehaviouralGraph:
    """A service conversation as a labelled behavioural graph.

    Operations become vertices labelled by their capability concept; flow
    edges become control edges — the same shape task graphs have, so the
    one matcher serves both discovery and adaptation.
    """
    graph = BehaviouralGraph(name)
    for operation in conversation.operations:
        graph.add_vertex(
            Vertex(
                vertex_id=operation.name,
                label=operation.capability,
                inputs=operation.inputs,
                outputs=operation.outputs,
                activity_name=operation.name,
            )
        )
    for pred, succ in conversation.flow:
        if not graph.has_edge(pred, succ):
            graph.add_edge(pred, succ)
    return graph


@dataclass(frozen=True)
class WhiteBoxQuery:
    """A discovery query carrying a required behaviour.

    ``behaviour`` is either a :class:`Task` (the requester's intended usage
    pattern) or a raw :class:`Conversation`.  ``require_conversation``
    decides what happens to black-box services: excluded (strict, default)
    or accepted on their profile alone (lenient — the §II.3 trade-off).
    """

    query: DiscoveryQuery
    behaviour: Union[Task, Conversation]
    require_conversation: bool = True


@dataclass
class WhiteBoxMatch:
    """One white-box result: the service + the behavioural evidence."""

    service: ServiceDescription
    embedding: Optional[HomeomorphismResult] = None

    @property
    def behaviourally_verified(self) -> bool:
        return self.embedding is not None and self.embedding.found


class WhiteBoxDiscovery:
    """Profile matching + conversation embedding."""

    def __init__(
        self,
        discovery: QoSAwareDiscovery,
        ontology: Optional[Ontology] = None,
        config: HomeomorphismConfig = HomeomorphismConfig(),
    ) -> None:
        self.discovery = discovery
        self.ontology = (
            ontology if ontology is not None else discovery.ontology
        )
        self.config = config

    def _required_graph(
        self, behaviour: Union[Task, Conversation]
    ) -> BehaviouralGraph:
        if isinstance(behaviour, Task):
            return task_to_graph(behaviour)
        return conversation_to_graph(behaviour, "required")

    def discover(self, white_box_query: WhiteBoxQuery) -> List[WhiteBoxMatch]:
        """Profile-admissible services whose conversation supports the
        required behaviour, behaviourally-verified ones first."""
        required = self._required_graph(white_box_query.behaviour)
        matches: List[WhiteBoxMatch] = []
        for profile_match in self.discovery.discover(white_box_query.query):
            service = profile_match.service
            if service.conversation is None:
                if not white_box_query.require_conversation:
                    matches.append(WhiteBoxMatch(service))
                continue
            host = conversation_to_graph(
                service.conversation, service.service_id
            )
            embedding = find_homeomorphism(
                required, host, self.ontology, self.config
            )
            if embedding.found:
                matches.append(WhiteBoxMatch(service, embedding))
        matches.sort(
            key=lambda m: (not m.behaviourally_verified, m.service.name)
        )
        return matches

    def candidates(
        self, white_box_query: WhiteBoxQuery
    ) -> List[ServiceDescription]:
        return [m.service for m in self.discover(white_box_query)]
