"""``python -m repro`` — see :mod:`repro.cli` for the commands."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
