"""The stable public API of the QASOM middleware.

``repro.api`` is the one blessed import surface: everything an
application, the CLI, or an example needs, re-exported with an explicit
``__all__``.  Import from here —

    from repro.api import (
        MiddlewareRuntime, QASOM, RuntimeConfig, UserRequest,
        build_shopping_scenario,
    )

— and deeper module paths stay free to move between releases
(``tests/test_api_hygiene.py`` pins this surface; the "Public API &
migration" section of ``docs/ARCHITECTURE.md`` maps the pre-redesign
entrypoints onto it).

The surface has three tiers:

* **Core** — the middleware itself (:class:`QASOM`, the concurrent
  :class:`MiddlewareRuntime`, their configs, requests/results/handles);
* **Environment & scenarios** — the simulated pervasive environment and
  the paper's scenario builders;
* **Toolkit** — the building blocks applications compose their own
  pipelines from (tasks, QoS model, selector, engine, resilience and
  observability), plus the reporting helpers the CLI renders with.
"""

from __future__ import annotations

# -- core middleware --------------------------------------------------------
from repro.errors import (
    AdmissionRejectedError,
    DeadlineExceededError,
    MiddlewareRuntimeError,
    ReproError,
    RuntimeInvariantError,
    RuntimeShutdownError,
    UnsupportedBackendFeatureError,
    WorkerCrashError,
    WorkerProcessCrash,
)
from repro.middleware.config import MiddlewareConfig
from repro.middleware.qasom import QASOM, RunResult
from repro.runtime import (
    BACKEND_CHOICES,
    AdaptiveAdmissionController,
    ChaosPolicy,
    ExecutionBackend,
    InvariantReport,
    MiddlewareRuntime,
    ProcessBackend,
    RequestStatus,
    RetryBudget,
    RunHandle,
    RuntimeConfig,
    ThreadBackend,
    assert_runtime_invariants,
    verify_runtime_invariants,
)
from repro.composition.baselines import (
    ExhaustiveSelection,
    GeneticSelection,
    GreedySelection,
    RandomSelection,
)
from repro.composition.exact import ExactSelection
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.selection import (
    CandidateSets,
    CompositionPlan,
    Selector,
)
from repro.composition.task import Task, leaf, loop, parallel, sequence
from repro.resilience.degradation import PartialExecutionReport

# -- environment & scenarios ------------------------------------------------
from repro.env.device import Device, DeviceClass
from repro.env.environment import EnvironmentConfig, PervasiveEnvironment
from repro.env.scenarios import (
    Scenario,
    build_hospital_scenario,
    build_holiday_camp_scenario,
    build_shopping_scenario,
)
from repro.services.description import ServiceDescription
from repro.services.generator import ServiceGenerator
from repro.services.registry import RegistrySnapshot, ServiceRegistry

# -- toolkit ----------------------------------------------------------------
from repro import observability
from repro.adaptation.homeomorphism import HomeomorphismConfig
from repro.adaptation.monitoring import MonitorConfig, QoSObservation
from repro.adaptation.repository_io import dump_repository
from repro.adaptation.reputation import ReputationManager
from repro.composition.aggregation import (
    AggregationApproach,
    aggregate_composition,
)
from repro.composition.qassa import QASSA, QassaConfig
from repro.execution.clock import SimulatedClock
from repro.execution.engine import ExecutionEngine, ExecutionReport
from repro.experiments import figures
from repro.experiments.drivers import (
    ClosedLoopDriver,
    DriverReport,
    OnOffArrivals,
    OpenLoopDriver,
    PoissonArrivals,
)
from repro.experiments.harness import Sweep
from repro.experiments.reporting import render_series, render_table
from repro.observability import (
    FlightRecorder,
    ForensicReporter,
    Observability,
    ObservabilityConfig,
    RuntimeEvent,
    Slo,
    StageWindows,
    TraceAssembly,
    TraceContext,
    WindowedHistogram,
    assemble_traces,
)
from repro.qos.model import QoSModel, build_end_to_end_model
from repro.qos.properties import STANDARD_PROPERTIES
from repro.qos.sla import ComplianceTracker, derive_slas
from repro.qos.values import QoSVector
from repro.resilience import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    ResilienceConfig,
)
from repro.resilience.policies import TimeoutPolicy
from repro.semantics.matching import MatchDegree
from repro.semantics.ontology import Ontology

__all__ = [
    # core middleware
    "AdaptiveAdmissionController",
    "AdmissionRejectedError",
    "BACKEND_CHOICES",
    "CandidateSets",
    "ChaosPolicy",
    "CompositionPlan",
    "DeadlineExceededError",
    "ExecutionBackend",
    "GlobalConstraint",
    "InvariantReport",
    "MiddlewareConfig",
    "MiddlewareRuntime",
    "MiddlewareRuntimeError",
    "PartialExecutionReport",
    "ProcessBackend",
    "QASOM",
    "ReproError",
    "RequestStatus",
    "RetryBudget",
    "RunHandle",
    "RunResult",
    "RuntimeConfig",
    "RuntimeInvariantError",
    "RuntimeShutdownError",
    "Task",
    "ThreadBackend",
    "UnsupportedBackendFeatureError",
    "UserRequest",
    "WorkerCrashError",
    "WorkerProcessCrash",
    "assert_runtime_invariants",
    "leaf",
    "loop",
    "parallel",
    "sequence",
    "verify_runtime_invariants",
    # environment & scenarios
    "Device",
    "DeviceClass",
    "EnvironmentConfig",
    "PervasiveEnvironment",
    "RegistrySnapshot",
    "Scenario",
    "ServiceDescription",
    "ServiceGenerator",
    "ServiceRegistry",
    "build_hospital_scenario",
    "build_holiday_camp_scenario",
    "build_shopping_scenario",
    # toolkit
    "AggregationApproach",
    "ClosedLoopDriver",
    "ComplianceTracker",
    "DriverReport",
    "ExactSelection",
    "ExecutionEngine",
    "ExecutionReport",
    "ExhaustiveSelection",
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "FlightRecorder",
    "ForensicReporter",
    "GeneticSelection",
    "GreedySelection",
    "HomeomorphismConfig",
    "MatchDegree",
    "MonitorConfig",
    "Observability",
    "ObservabilityConfig",
    "OnOffArrivals",
    "Ontology",
    "OpenLoopDriver",
    "PoissonArrivals",
    "QASSA",
    "QassaConfig",
    "QoSModel",
    "QoSObservation",
    "QoSVector",
    "RandomSelection",
    "ReputationManager",
    "ResilienceConfig",
    "RuntimeEvent",
    "STANDARD_PROPERTIES",
    "Selector",
    "SimulatedClock",
    "Slo",
    "StageWindows",
    "Sweep",
    "TimeoutPolicy",
    "TraceAssembly",
    "TraceContext",
    "WindowedHistogram",
    "aggregate_composition",
    "assemble_traces",
    "build_end_to_end_model",
    "derive_slas",
    "dump_repository",
    "figures",
    "observability",
    "render_series",
    "render_table",
]
