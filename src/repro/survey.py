"""The state-of-the-art taxonomies and comparison tables (Chapter II).

Chapter II structures the QoS-aware SOM landscape along four taxonomies
(Figs. II.1-II.4) and summarises the surveyed platforms in Tables II.1
(service-oriented environments) and II.2 (pervasive environments).  They
are *data*, not experiments — encoded here so the repository reproduces the
paper's survey artefacts too, and so tests can place QASOM itself in the
design space the chapter defines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


# ----------------------------------------------------------------------
# Fig. II.1 — taxonomy of QoS models
# ----------------------------------------------------------------------
class ModelScope(enum.Enum):
    """Generic vs specific QoS property coverage."""

    GENERIC = "generic"
    SPECIFIC = "specific"


class ModelReach(enum.Enum):
    """End-to-end vs service-centred modelling."""

    END_TO_END = "end-to-end"
    SERVICE_CENTRED = "service-centred"


class ModelSemantics(enum.Enum):
    """Syntactic vs semantic QoS vocabularies."""

    SYNTACTIC = "syntactic"
    SEMANTIC = "semantic"


# ----------------------------------------------------------------------
# Fig. II.2 — taxonomy of QoS-aware service specifications
# ----------------------------------------------------------------------
class QsdStyle(enum.Enum):
    """Black-box vs white-box quality-based service description."""

    BLACK_BOX = "black-box"
    WHITE_BOX = "white-box"


# ----------------------------------------------------------------------
# Fig. II.3 — taxonomy of QoS-aware service composition
# ----------------------------------------------------------------------
class AssemblyApproach(enum.Enum):
    """How compositions are assembled functionally."""

    TEMPLATE = "template-based"
    GRAPH = "graph-based"
    AI_PLANNING = "ai-planning"


class ConstraintScope(enum.Enum):
    """Local (per activity) vs global (whole composition) QoS constraints."""

    LOCAL = "local"
    GLOBAL = "global"


class SelectionStrategy(enum.Enum):
    """Exact vs heuristic resolution of the selection problem."""

    EXACT = "exact"
    HEURISTIC = "heuristic"


# ----------------------------------------------------------------------
# Fig. II.4 — taxonomy of QoS-driven composition adaptation
# ----------------------------------------------------------------------
class AdaptationTiming(enum.Enum):
    """Reactive (after the violation) vs proactive (before it)."""

    REACTIVE = "reactive"
    PROACTIVE = "proactive"


class AdaptationSubject(enum.Enum):
    """What the adaptation changes."""

    SERVICE = "service"          # substitution
    BEHAVIOUR = "behaviour"      # re-structure the composition
    PARAMETER = "parameter"      # tune without re-binding


@dataclass(frozen=True)
class SurveyedPlatform:
    """One row of Table II.1 / II.2."""

    name: str
    pervasive: bool
    model_semantics: ModelSemantics
    model_reach: ModelReach
    qsd: QsdStyle
    assembly: AssemblyApproach
    constraint_scope: ConstraintScope
    selection: SelectionStrategy
    adaptation_timing: AdaptationTiming
    adaptation_subjects: Tuple[AdaptationSubject, ...] = ()

    def row(self) -> List[str]:
        """The platform as a printable table row."""
        return [
            self.name,
            self.model_semantics.value,
            self.model_reach.value,
            self.qsd.value,
            self.assembly.value,
            self.constraint_scope.value,
            self.selection.value,
            self.adaptation_timing.value,
            "+".join(s.value for s in self.adaptation_subjects) or "-",
        ]


#: Table II.1 — QoS-aware SOM for (classic) service-oriented environments.
TABLE_II1: Tuple[SurveyedPlatform, ...] = (
    SurveyedPlatform(
        "METEOR-S", False, ModelSemantics.SEMANTIC,
        ModelReach.SERVICE_CENTRED, QsdStyle.WHITE_BOX,
        AssemblyApproach.TEMPLATE, ConstraintScope.GLOBAL,
        SelectionStrategy.EXACT, AdaptationTiming.REACTIVE,
        (AdaptationSubject.SERVICE,),
    ),
    SurveyedPlatform(
        "DySOA", False, ModelSemantics.SYNTACTIC,
        ModelReach.SERVICE_CENTRED, QsdStyle.BLACK_BOX,
        AssemblyApproach.TEMPLATE, ConstraintScope.GLOBAL,
        SelectionStrategy.HEURISTIC, AdaptationTiming.REACTIVE,
        (AdaptationSubject.SERVICE, AdaptationSubject.PARAMETER),
    ),
    SurveyedPlatform(
        "A-WSCE", False, ModelSemantics.SYNTACTIC,
        ModelReach.SERVICE_CENTRED, QsdStyle.BLACK_BOX,
        AssemblyApproach.AI_PLANNING, ConstraintScope.GLOBAL,
        SelectionStrategy.HEURISTIC, AdaptationTiming.REACTIVE,
        (AdaptationSubject.BEHAVIOUR,),
    ),
    SurveyedPlatform(
        "SCENE", False, ModelSemantics.SYNTACTIC,
        ModelReach.SERVICE_CENTRED, QsdStyle.BLACK_BOX,
        AssemblyApproach.TEMPLATE, ConstraintScope.LOCAL,
        SelectionStrategy.HEURISTIC, AdaptationTiming.REACTIVE,
        (AdaptationSubject.SERVICE,),
    ),
    SurveyedPlatform(
        "PAWS", False, ModelSemantics.SEMANTIC,
        ModelReach.SERVICE_CENTRED, QsdStyle.BLACK_BOX,
        AssemblyApproach.TEMPLATE, ConstraintScope.GLOBAL,
        SelectionStrategy.HEURISTIC, AdaptationTiming.REACTIVE,
        (AdaptationSubject.SERVICE,),
    ),
    SurveyedPlatform(
        "VRESCo", False, ModelSemantics.SYNTACTIC,
        ModelReach.SERVICE_CENTRED, QsdStyle.WHITE_BOX,
        AssemblyApproach.TEMPLATE, ConstraintScope.GLOBAL,
        SelectionStrategy.HEURISTIC, AdaptationTiming.REACTIVE,
        (AdaptationSubject.SERVICE,),
    ),
)

#: Table II.2 — QoS-aware SOM for pervasive environments.
TABLE_II2: Tuple[SurveyedPlatform, ...] = (
    SurveyedPlatform(
        "SpiderNet", True, ModelSemantics.SYNTACTIC,
        ModelReach.END_TO_END, QsdStyle.BLACK_BOX,
        AssemblyApproach.GRAPH, ConstraintScope.GLOBAL,
        SelectionStrategy.HEURISTIC, AdaptationTiming.REACTIVE,
        (AdaptationSubject.SERVICE,),
    ),
    SurveyedPlatform(
        "Amigo", True, ModelSemantics.SEMANTIC,
        ModelReach.SERVICE_CENTRED, QsdStyle.WHITE_BOX,
        AssemblyApproach.TEMPLATE, ConstraintScope.GLOBAL,
        SelectionStrategy.HEURISTIC, AdaptationTiming.REACTIVE,
        (AdaptationSubject.SERVICE,),
    ),
    SurveyedPlatform(
        "Aura", True, ModelSemantics.SYNTACTIC,
        ModelReach.END_TO_END, QsdStyle.BLACK_BOX,
        AssemblyApproach.TEMPLATE, ConstraintScope.GLOBAL,
        SelectionStrategy.EXACT, AdaptationTiming.REACTIVE,
        (AdaptationSubject.SERVICE, AdaptationSubject.PARAMETER),
    ),
    SurveyedPlatform(
        "PICO", True, ModelSemantics.SEMANTIC,
        ModelReach.END_TO_END, QsdStyle.BLACK_BOX,
        AssemblyApproach.GRAPH, ConstraintScope.GLOBAL,
        SelectionStrategy.HEURISTIC, AdaptationTiming.REACTIVE,
        (AdaptationSubject.SERVICE,),
    ),
    SurveyedPlatform(
        "MUSIC", True, ModelSemantics.SYNTACTIC,
        ModelReach.END_TO_END, QsdStyle.BLACK_BOX,
        AssemblyApproach.TEMPLATE, ConstraintScope.GLOBAL,
        SelectionStrategy.HEURISTIC, AdaptationTiming.REACTIVE,
        (AdaptationSubject.SERVICE, AdaptationSubject.PARAMETER),
    ),
    SurveyedPlatform(
        "PERSE", True, ModelSemantics.SEMANTIC,
        ModelReach.SERVICE_CENTRED, QsdStyle.WHITE_BOX,
        AssemblyApproach.TEMPLATE, ConstraintScope.GLOBAL,
        SelectionStrategy.HEURISTIC, AdaptationTiming.REACTIVE,
        (AdaptationSubject.SERVICE,),
    ),
)

#: QASOM's own position in the design space — the thesis' contribution row.
QASOM_POSITION = SurveyedPlatform(
    "QASOM (this work)", True, ModelSemantics.SEMANTIC,
    ModelReach.END_TO_END, QsdStyle.WHITE_BOX,
    AssemblyApproach.TEMPLATE, ConstraintScope.GLOBAL,
    SelectionStrategy.HEURISTIC, AdaptationTiming.PROACTIVE,
    (AdaptationSubject.SERVICE, AdaptationSubject.BEHAVIOUR),
)

TABLE_HEADERS: Tuple[str, ...] = (
    "platform", "QoS model", "reach", "QSD", "assembly",
    "constraints", "selection", "adaptation", "adapts",
)


def render_survey_table(pervasive: bool) -> str:
    """Render Table II.1 (``pervasive=False``) or II.2 (``True``), with the
    QASOM row appended to the pervasive table as the thesis does."""
    from repro.experiments.reporting import render_table

    rows = [p.row() for p in (TABLE_II2 if pervasive else TABLE_II1)]
    title = (
        "Table II.2 — QoS-aware SOM for pervasive environments"
        if pervasive
        else "Table II.1 — QoS-aware SOM for service-oriented environments"
    )
    if pervasive:
        rows.append(QASOM_POSITION.row())
    return render_table(list(TABLE_HEADERS), rows, title=title)
