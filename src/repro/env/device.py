"""Devices of a pervasive environment.

Pervasive computing's third key feature (§I.1) is the reliance on
resource-constrained devices.  A :class:`Device` models the resources that
matter for end-to-end QoS: CPU capacity (slows hosted services down when
loaded), memory, and battery (drains with activity; a dead device takes its
services with it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import EnvironmentError_


class DeviceClass(enum.Enum):
    """Coarse device profiles with characteristic resource envelopes."""

    SERVER = "server"            # fixed infrastructure (hospital platform)
    LAPTOP = "laptop"
    SMARTPHONE = "smartphone"
    SENSOR = "sensor"            # severely constrained


#: (cpu_factor, memory_mb, battery_wh, idle_drain_w, active_drain_w)
_PROFILES = {
    DeviceClass.SERVER: (4.0, 16384, float("inf"), 0.0, 0.0),
    DeviceClass.LAPTOP: (2.0, 8192, 60.0, 2.0, 8.0),
    DeviceClass.SMARTPHONE: (1.0, 2048, 12.0, 0.2, 1.5),
    DeviceClass.SENSOR: (0.25, 64, 2.0, 0.02, 0.3),
}


@dataclass
class Device:
    """One networked device hosting zero or more services."""

    device_id: str
    device_class: DeviceClass = DeviceClass.SMARTPHONE
    cpu_factor: float = field(init=False)
    memory_mb: float = field(init=False)
    battery_wh: float = field(init=False)
    battery_remaining_wh: float = field(init=False)
    cpu_load: float = 0.0            # [0, 1]
    online: bool = True

    def __post_init__(self) -> None:
        cpu, memory, battery, self._idle_drain, self._active_drain = _PROFILES[
            self.device_class
        ]
        self.cpu_factor = cpu
        self.memory_mb = memory
        self.battery_wh = battery
        self.battery_remaining_wh = battery

    # ------------------------------------------------------------------
    @property
    def battery_level(self) -> float:
        """Remaining battery in [0, 1]; mains-powered devices report 1."""
        if self.battery_wh == float("inf"):
            return 1.0
        if self.battery_wh <= 0:
            return 0.0
        return max(0.0, min(1.0, self.battery_remaining_wh / self.battery_wh))

    @property
    def alive(self) -> bool:
        return self.online and self.battery_level > 0.0

    def slowdown(self) -> float:
        """Multiplier applied to hosted services' execution time.

        A loaded or slow device stretches response times: base 1/cpu_factor,
        amplified up to 3x as cpu_load approaches saturation.
        """
        load_penalty = 1.0 + 2.0 * min(max(self.cpu_load, 0.0), 1.0)
        return load_penalty / self.cpu_factor

    def drain(self, seconds: float, active_fraction: float = 0.0) -> None:
        """Consume battery over a simulated period."""
        if seconds < 0:
            raise EnvironmentError_(f"cannot drain for {seconds} s")
        if self.battery_wh == float("inf"):
            return
        watts = (
            self._idle_drain * (1.0 - active_fraction)
            + self._active_drain * active_fraction
        )
        self.battery_remaining_wh = max(
            0.0, self.battery_remaining_wh - watts * seconds / 3600.0
        )
        if self.battery_remaining_wh == 0.0:
            self.online = False

    def recharge(self) -> None:
        self.battery_remaining_wh = self.battery_wh
        self.online = True

    def __repr__(self) -> str:
        return (
            f"Device({self.device_id!r}, {self.device_class.value}, "
            f"battery={self.battery_level:.0%}, "
            f"{'up' if self.alive else 'down'})"
        )
