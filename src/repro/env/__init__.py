"""Pervasive-environment simulator (S12).

The paper's evaluation ran against synthetic service populations on a
desktop; its motivating scenarios, however, are ad hoc environments made of
mobile, resource-constrained devices on fluctuating wireless links.  This
package simulates exactly that substrate so the middleware's full loop —
discovery, selection, execution, monitoring, adaptation — can be exercised
end to end:

* :mod:`repro.env.device` — devices with CPU/memory/battery profiles and
  battery drain;
* :mod:`repro.env.network` — wireless links whose latency/bandwidth/loss
  follow bounded random-walk fluctuation processes;
* :mod:`repro.env.environment` — the environment itself: registry + devices
  + links + churn + an :data:`~repro.execution.engine.Invoker` that turns
  advertised QoS into *observed* QoS through the infrastructure state;
* :mod:`repro.env.scenarios` — ready-made builds of the paper's three
  scenarios (pervasive shopping, medical visit, holiday camp).
"""

from repro.env.device import Device, DeviceClass
from repro.env.environment import EnvironmentConfig, PervasiveEnvironment
from repro.env.network import FluctuationProcess, WirelessLink, WirelessNetwork
from repro.env.scenarios import (
    build_hospital_scenario,
    build_holiday_camp_scenario,
    build_shopping_scenario,
    build_task_ontology,
)

__all__ = [
    "Device",
    "DeviceClass",
    "EnvironmentConfig",
    "FluctuationProcess",
    "PervasiveEnvironment",
    "WirelessLink",
    "WirelessNetwork",
    "build_hospital_scenario",
    "build_holiday_camp_scenario",
    "build_shopping_scenario",
    "build_task_ontology",
]
