"""Ready-made builds of the paper's motivating scenarios (§I.1).

Three scenarios drive the thesis: the **pervasive medical visit**, the
**pervasive shopping** trip (Fig. I.1) and the **pervasive entertaining**
holiday camp.  Each builder returns a fully-populated :class:`Scenario`:
a task ontology, an environment with devices/services, the user task with
its task class (alternative behaviours), and a representative user request.

These are what the example applications and the integration tests run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.semantics.ontology import Ontology
from repro.qos.properties import STANDARD_PROPERTIES, QoSProperty
from repro.services.generator import ServiceGenerator
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.task import (
    Task,
    conditional,
    leaf,
    loop,
    parallel,
    sequence,
)
from repro.adaptation.task_class import TaskClass, TaskClassRepository
from repro.env.device import DeviceClass
from repro.env.environment import EnvironmentConfig, PervasiveEnvironment

#: Property subset the scenarios constrain and weight.
SCENARIO_PROPERTIES: Dict[str, QoSProperty] = {
    name: STANDARD_PROPERTIES[name]
    for name in ("response_time", "cost", "availability", "reliability")
}


@dataclass
class Scenario:
    """Everything an example application needs to run end to end."""

    name: str
    ontology: Ontology
    environment: PervasiveEnvironment
    task: Task
    request: UserRequest
    repository: TaskClassRepository
    properties: Dict[str, QoSProperty]


def build_task_ontology() -> Ontology:
    """The task (capability) ontology shared by the three scenarios.

    Concept hierarchy under ``task:UserActivity``; specialisations let the
    semantic discovery and homeomorphism matching exercise PLUGIN matches
    (e.g. ``task:CardPayment`` ⊑ ``task:Payment``).
    """
    onto = Ontology("tasks")
    root = onto.declare_class("task:UserActivity", label="User activity")

    # Shopping.
    onto.declare_class("task:Browse", [root])
    onto.declare_class("task:Order", [root])
    payment = onto.declare_class("task:Payment", [root])
    onto.declare_class("task:CardPayment", [payment])
    onto.declare_class("task:MobilePayment", [payment])
    onto.declare_class("task:Notification", [root])
    onto.declare_class("task:Delivery", [root])
    onto.declare_class("task:PickupPlanning", [root])

    # Hospital.
    onto.declare_class("task:Registration", [root])
    onto.declare_class("task:Diagnosis", [root])
    onto.declare_class("task:Pharmacy", [root])
    onto.declare_class("task:Scheduling", [root])

    # Entertainment.
    onto.declare_class("task:ChartLookup", [root])
    streaming = onto.declare_class("task:Streaming", [root])
    onto.declare_class("task:AudioStreaming", [streaming])
    onto.declare_class("task:VideoStreaming", [streaming])

    # Data concepts used in IOPE signatures and data constraints.
    data = onto.declare_class("data:Data", label="Data item")
    for concept in (
        "data:Query", "data:Catalogue", "data:OrderForm", "data:Receipt",
        "data:PatientRecord", "data:Prescription", "data:Appointment",
        "data:SongList", "data:MediaStream",
    ):
        onto.declare_class(concept, [data])
    onto.validate()
    return onto


def _populate(
    environment: PervasiveEnvironment,
    generator: ServiceGenerator,
    capabilities: Dict[str, int],
    device_class: DeviceClass,
) -> None:
    """Host ``capabilities[c]`` synthetic services per capability ``c``."""
    for capability, count in capabilities.items():
        for service in generator.candidates(capability, count):
            environment.host_on_new_device(service, device_class)


# ----------------------------------------------------------------------
def build_shopping_scenario(
    services_per_activity: int = 12, seed: int = 7
) -> Scenario:
    """Bob's commercial-centre shopping trip (Fig. I.1).

    The primary behaviour browses, orders, then pays and gets notified in
    parallel.  The task class holds two alternatives: a reordered behaviour
    (pay before notification, sequentially) and a finer-grained one where
    payment is split into authorisation + settlement — exercising the
    split mappings of §V.6.2.3.
    """
    ontology = build_task_ontology()
    ontology.declare_class("task:PaymentAuthorisation", ["task:Payment"])
    ontology.declare_class("task:PaymentSettlement", ["task:Payment"])

    environment = PervasiveEnvironment(
        EnvironmentConfig(churn_leave_rate=0.02, churn_join_rate=0.05),
        seed=seed,
    )
    generator = ServiceGenerator(SCENARIO_PROPERTIES, seed=seed)
    _populate(
        environment,
        generator,
        {
            "task:Browse": services_per_activity,
            "task:Order": services_per_activity,
            "task:CardPayment": services_per_activity,
            "task:MobilePayment": services_per_activity // 2 or 1,
            "task:Notification": services_per_activity,
            "task:PaymentAuthorisation": services_per_activity // 2 or 1,
            "task:PaymentSettlement": services_per_activity // 2 or 1,
            "task:PickupPlanning": services_per_activity // 2 or 1,
        },
        DeviceClass.SMARTPHONE,
    )

    task = Task(
        "shopping",
        sequence(
            leaf("Browse", "task:Browse",
                 inputs=frozenset({"data:Query"}),
                 outputs=frozenset({"data:Catalogue"})),
            leaf("Order", "task:Order",
                 inputs=frozenset({"data:Catalogue"}),
                 outputs=frozenset({"data:OrderForm"})),
            parallel(
                leaf("Pay", "task:Payment",
                     inputs=frozenset({"data:OrderForm"}),
                     outputs=frozenset({"data:Receipt"})),
                leaf("Notify", "task:Notification"),
            ),
        ),
    )

    # Alternative 1: same coordination, one extra delivery-planning step at
    # the end — the task embeds with every vertex mapped one-to-one and the
    # extra activity simply unused by the mapping.
    alternative_extended = Task(
        "shopping-with-pickup",
        sequence(
            leaf("BrowseAlt", "task:Browse",
                 outputs=frozenset({"data:Catalogue"})),
            leaf("OrderAlt", "task:Order",
                 outputs=frozenset({"data:OrderForm"})),
            parallel(
                leaf("PayAlt", "task:Payment",
                     outputs=frozenset({"data:Receipt"})),
                leaf("NotifyAlt", "task:Notification"),
            ),
            leaf("Pickup", "task:PickupPlanning"),
        ),
    )
    # Alternative 2: finer granularity — payment split into authorisation +
    # settlement (both ⊑ task:Payment), exercising the §V.6.2.3 split
    # mappings: the task's Pay vertex maps to the Authorise→Settle chain.
    alternative_split = Task(
        "shopping-split-payment",
        sequence(
            leaf("BrowseS", "task:Browse",
                 outputs=frozenset({"data:Catalogue"})),
            leaf("OrderS", "task:Order",
                 outputs=frozenset({"data:OrderForm"})),
            parallel(
                sequence(
                    leaf("Authorise", "task:PaymentAuthorisation"),
                    leaf("Settle", "task:PaymentSettlement",
                         outputs=frozenset({"data:Receipt"})),
                ),
                leaf("NotifyS", "task:Notification"),
            ),
        ),
    )

    repository = TaskClassRepository(ontology)
    shopping_class = repository.new_class(
        "shopping", "Buy items in a commercial centre"
    )
    shopping_class.add(task)
    shopping_class.add(alternative_extended)
    shopping_class.add(alternative_split)

    request = UserRequest(
        task=task,
        constraints=(
            GlobalConstraint.at_most("response_time", 4000.0),
            GlobalConstraint.at_most("cost", 250.0),
            GlobalConstraint.at_least("availability", 0.25),
        ),
        weights={"response_time": 0.3, "cost": 0.3, "availability": 0.2,
                 "reliability": 0.2},
    )
    return Scenario(
        "shopping", ontology, environment, task, request, repository,
        dict(SCENARIO_PROPERTIES),
    )


# ----------------------------------------------------------------------
def build_hospital_scenario(
    services_per_activity: int = 10, seed: int = 11
) -> Scenario:
    """Bob's pervasive medical visit: registration → diagnosis →
    (pharmacy ∥ scheduling) → payment, with a re-diagnosis loop."""
    ontology = build_task_ontology()
    environment = PervasiveEnvironment(
        EnvironmentConfig(churn_leave_rate=0.01, churn_join_rate=0.05),
        seed=seed,
    )
    generator = ServiceGenerator(SCENARIO_PROPERTIES, seed=seed)
    _populate(
        environment,
        generator,
        {
            "task:Registration": services_per_activity,
            "task:Diagnosis": services_per_activity,
            "task:Pharmacy": services_per_activity,
            "task:Scheduling": services_per_activity,
            "task:CardPayment": services_per_activity,
        },
        DeviceClass.SERVER,
    )

    task = Task(
        "medical-visit",
        sequence(
            leaf("Register", "task:Registration",
                 outputs=frozenset({"data:PatientRecord"})),
            loop(leaf("Diagnose", "task:Diagnosis",
                      inputs=frozenset({"data:PatientRecord"}),
                      outputs=frozenset({"data:Prescription"})),
                 max_iterations=2, expected_iterations=1.2),
            parallel(
                leaf("Pharmacy", "task:Pharmacy",
                     inputs=frozenset({"data:Prescription"})),
                leaf("FollowUp", "task:Scheduling",
                     outputs=frozenset({"data:Appointment"})),
            ),
            leaf("Pay", "task:Payment"),
        ),
    )
    # Alternative behaviour: the re-diagnosis loop is dropped (single
    # consultation) and payment is pinned to card payment — same parallel
    # coordination, so the primary's graph embeds one-to-one.
    alternative = Task(
        "medical-visit-single-consultation",
        sequence(
            leaf("RegisterAlt", "task:Registration",
                 outputs=frozenset({"data:PatientRecord"})),
            leaf("DiagnoseAlt", "task:Diagnosis",
                 outputs=frozenset({"data:Prescription"})),
            parallel(
                leaf("PharmacyAlt", "task:Pharmacy"),
                leaf("FollowUpAlt", "task:Scheduling",
                     outputs=frozenset({"data:Appointment"})),
            ),
            leaf("PayAlt", "task:CardPayment"),
        ),
    )
    repository = TaskClassRepository(ontology)
    visit_class = repository.new_class("medical-visit", "Hospital visit flow")
    visit_class.add(task)
    visit_class.add(alternative)

    request = UserRequest(
        task=task,
        constraints=(
            GlobalConstraint.at_most("response_time", 6000.0),
            GlobalConstraint.at_least("reliability", 0.2),
        ),
        weights={"response_time": 0.25, "cost": 0.15, "availability": 0.3,
                 "reliability": 0.3},
    )
    return Scenario(
        "hospital", ontology, environment, task, request, repository,
        dict(SCENARIO_PROPERTIES),
    )


# ----------------------------------------------------------------------
def build_holiday_camp_scenario(
    services_per_activity: int = 8, seed: int = 13
) -> Scenario:
    """Bob at the holiday camp: chart lookup, then audio *or* video
    streaming — entirely hosted on fellow campers' phones (ad hoc, churny)."""
    ontology = build_task_ontology()
    environment = PervasiveEnvironment(
        EnvironmentConfig(churn_leave_rate=0.08, churn_join_rate=0.08,
                          qos_noise=0.15),
        seed=seed,
    )
    generator = ServiceGenerator(SCENARIO_PROPERTIES, seed=seed)
    _populate(
        environment,
        generator,
        {
            "task:ChartLookup": services_per_activity,
            "task:AudioStreaming": services_per_activity,
            "task:VideoStreaming": services_per_activity,
        },
        DeviceClass.SMARTPHONE,
    )

    task = Task(
        "entertainment",
        sequence(
            leaf("Top10", "task:ChartLookup",
                 outputs=frozenset({"data:SongList"})),
            conditional(
                leaf("StreamAudio", "task:AudioStreaming",
                     outputs=frozenset({"data:MediaStream"})),
                leaf("StreamVideo", "task:VideoStreaming",
                     outputs=frozenset({"data:MediaStream"})),
                probabilities=(0.7, 0.3),
            ),
        ),
    )
    # Alternative behaviour: chart lookup followed by ONE generic streaming
    # activity.  The primary's two conditional branches (audio / video) are
    # mutually exclusive, so both *merge* onto the single Stream vertex — a
    # §V.6.2.3 particular vertex mapping.  Note the generic label sits
    # ABOVE the branch labels in the ontology, so this embedding needs the
    # SUBSUME matching threshold (see HomeomorphismConfig.minimum_degree).
    alternative = Task(
        "entertainment-any-stream",
        sequence(
            leaf("Top10Alt", "task:ChartLookup",
                 outputs=frozenset({"data:SongList"})),
            leaf("StreamAlt", "task:Streaming",
                 outputs=frozenset({"data:MediaStream"})),
        ),
    )
    repository = TaskClassRepository(ontology)
    fun_class = repository.new_class("entertainment", "Camp media streaming")
    fun_class.add(task)
    fun_class.add(alternative)

    request = UserRequest(
        task=task,
        constraints=(
            GlobalConstraint.at_most("response_time", 3000.0),
            GlobalConstraint.at_least("availability", 0.3),
        ),
        weights={"response_time": 0.4, "availability": 0.3, "reliability": 0.2,
                 "cost": 0.1},
    )
    return Scenario(
        "holiday-camp", ontology, environment, task, request, repository,
        dict(SCENARIO_PROPERTIES),
    )
