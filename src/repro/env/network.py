"""Wireless network model with QoS fluctuation processes.

The decline of wireless connectivity is one of the paper's canonical causes
of run-time QoS fluctuation (§I.3.4).  Each device is attached to the
environment through a :class:`WirelessLink` whose latency, bandwidth and
loss rate evolve as **bounded random walks**: every simulation step adds
zero-mean noise and a mild pull back towards the nominal value, clipped to
physical bounds — producing the kind of sustained drifts (a user walking
away from an access point) that proactive monitoring is designed to catch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import EnvironmentError_


@dataclass
class FluctuationProcess:
    """A mean-reverting bounded random walk.

    ``value_{t+1} = value_t + gauss(0, volatility·span) +
    reversion·(nominal - value_t)``, clipped to [minimum, maximum].
    """

    nominal: float
    minimum: float
    maximum: float
    volatility: float = 0.05
    reversion: float = 0.1
    value: float = field(init=False)

    def __post_init__(self) -> None:
        if not self.minimum <= self.nominal <= self.maximum:
            raise EnvironmentError_(
                f"nominal {self.nominal} outside [{self.minimum}, {self.maximum}]"
            )
        self.value = self.nominal

    def step(self, rng: random.Random) -> float:
        span = self.maximum - self.minimum
        noise = rng.gauss(0.0, self.volatility * span)
        pull = self.reversion * (self.nominal - self.value)
        self.value = min(max(self.value + noise + pull, self.minimum), self.maximum)
        return self.value

    def degrade(self, fraction: float) -> None:
        """Push the walk towards its bad end (mobility event injection)."""
        span = self.maximum - self.minimum
        self.value = min(
            max(self.value - fraction * span, self.minimum), self.maximum
        )


@dataclass
class WirelessLink:
    """One device's attachment to the network."""

    device_id: str
    latency: FluctuationProcess = field(
        default_factory=lambda: FluctuationProcess(
            nominal=0.02, minimum=0.002, maximum=0.5
        )
    )
    bandwidth: FluctuationProcess = field(
        default_factory=lambda: FluctuationProcess(
            nominal=2e6, minimum=5e4, maximum=5e6
        )
    )
    loss_rate: FluctuationProcess = field(
        default_factory=lambda: FluctuationProcess(
            nominal=0.01, minimum=0.0, maximum=0.6
        )
    )

    def step(self, rng: random.Random) -> None:
        self.latency.step(rng)
        self.bandwidth.step(rng)
        self.loss_rate.step(rng)

    def degrade(self, fraction: float) -> None:
        """Worsen every dimension at once (user walked behind a wall)."""
        # Latency and loss worsen upward, bandwidth downward.
        span_l = self.latency.maximum - self.latency.minimum
        self.latency.value = min(
            self.latency.value + fraction * span_l, self.latency.maximum
        )
        span_p = self.loss_rate.maximum - self.loss_rate.minimum
        self.loss_rate.value = min(
            self.loss_rate.value + fraction * span_p, self.loss_rate.maximum
        )
        self.bandwidth.degrade(fraction)

    def transfer_seconds(self, payload_bytes: float) -> float:
        return self.latency.value + payload_bytes / max(self.bandwidth.value, 1.0)


class WirelessNetwork:
    """The set of links, stepped together on the simulated clock."""

    def __init__(self, seed: int = 0) -> None:
        self._links: Dict[str, WirelessLink] = {}
        self._rng = random.Random(seed)

    def attach(self, device_id: str, link: Optional[WirelessLink] = None) -> WirelessLink:
        if device_id in self._links:
            raise EnvironmentError_(f"device {device_id!r} already attached")
        if link is None:
            link = WirelessLink(device_id)
        elif link.device_id != device_id:
            raise EnvironmentError_(
                f"link is for {link.device_id!r}, not {device_id!r}"
            )
        self._links[device_id] = link
        return link

    def detach(self, device_id: str) -> None:
        self._links.pop(device_id, None)

    def link(self, device_id: str) -> WirelessLink:
        try:
            return self._links[device_id]
        except KeyError:
            raise EnvironmentError_(
                f"device {device_id!r} is not attached to the network"
            ) from None

    def has_link(self, device_id: str) -> bool:
        return device_id in self._links

    def step(self) -> None:
        for link in self._links.values():
            link.step(self._rng)

    def links(self) -> Dict[str, WirelessLink]:
        return dict(self._links)
