"""The pervasive environment: devices + network + registry + churn.

:class:`PervasiveEnvironment` is the world the middleware operates in.  It
owns the service registry, hosts services on devices, steps the wireless
fluctuation processes and the churn model on the simulated clock, and —
crucially — provides the :meth:`invoke` implementation the execution engine
uses: the QoS *observed* for an invocation is the advertised QoS distorted
by the current infrastructure state (device slowdown, link latency and
loss), which is exactly how end-to-end QoS fluctuation arises in the
paper's model (Ch. III's cross-layer dependencies, §V.1's adaptation
motivation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Set

from repro.errors import EnvironmentError_
from repro.observability import core as observability_core
from repro.qos.values import QoSVector
from repro.resilience.faults import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    RUNTIME_KINDS,
)
from repro.services.description import ServiceDescription
from repro.services.registry import ServiceRegistry
from repro.execution.clock import SimulatedClock
from repro.env.device import Device, DeviceClass
from repro.env.network import WirelessLink, WirelessNetwork


@dataclass(frozen=True)
class EnvironmentConfig:
    """Churn and distortion knobs.

    ``churn_leave_rate`` / ``churn_join_rate`` are per-step probabilities
    that a random provider device leaves/rejoins; ``qos_noise`` scales the
    multiplicative noise on observed QoS values.
    """

    churn_leave_rate: float = 0.0
    churn_join_rate: float = 0.0
    qos_noise: float = 0.05
    step_seconds: float = 1.0


class PervasiveEnvironment:
    """A simulated dynamic service environment."""

    def __init__(
        self,
        config: EnvironmentConfig = EnvironmentConfig(),
        seed: int = 0,
        clock: Optional[SimulatedClock] = None,
        faults: Optional[FaultSchedule] = None,
        observability=None,
    ) -> None:
        self.config = config
        self.clock = clock if clock is not None else SimulatedClock()
        self.registry = ServiceRegistry()
        self.network = WirelessNetwork(seed=seed + 1)
        self._devices: Dict[str, Device] = {}
        self._hosting: Dict[str, str] = {}       # service_id -> device_id
        self._parked: Dict[str, ServiceDescription] = {}  # withdrawn by churn
        self._rng = random.Random(seed)
        self.obs = observability_core.resolve(observability)
        self._pending_faults: List[FaultEvent] = []   # sorted, not yet due
        self._active_windows: List[FaultEvent] = []
        if faults is not None:
            self.schedule_faults(faults)

    def attach_observability(self, observability) -> None:
        """Point the environment's counters at a live registry."""
        self.obs = observability_core.resolve(observability)

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def add_device(
        self,
        device_id: str,
        device_class: DeviceClass = DeviceClass.SMARTPHONE,
        link: Optional[WirelessLink] = None,
    ) -> Device:
        if device_id in self._devices:
            raise EnvironmentError_(f"device {device_id!r} already present")
        device = Device(device_id, device_class)
        self._devices[device_id] = device
        self.network.attach(device_id, link)
        return device

    def device(self, device_id: str) -> Device:
        try:
            return self._devices[device_id]
        except KeyError:
            raise EnvironmentError_(f"unknown device {device_id!r}") from None

    def devices(self) -> List[Device]:
        return list(self._devices.values())

    def host(self, service: ServiceDescription, device_id: str) -> ServiceDescription:
        """Publish a service as hosted by one of the environment's devices."""
        device = self.device(device_id)
        service.host_device = device.device_id
        self.registry.publish(service)
        self._hosting[service.service_id] = device_id
        return service

    def host_on_new_device(
        self,
        service: ServiceDescription,
        device_class: DeviceClass = DeviceClass.SMARTPHONE,
    ) -> ServiceDescription:
        device_id = f"dev-{service.service_id}"
        self.add_device(device_id, device_class)
        return self.host(service, device_id)

    def hosting_device(self, service_id: str) -> Optional[Device]:
        device_id = self._hosting.get(service_id)
        return self._devices.get(device_id) if device_id else None

    # ------------------------------------------------------------------
    # liveness and invocation
    # ------------------------------------------------------------------
    def is_alive(self, service: ServiceDescription) -> bool:
        if service.service_id not in self.registry:
            return False
        device = self.hosting_device(service.service_id)
        return device is None or device.alive

    def invoke(
        self, service: ServiceDescription, timestamp: float
    ) -> Optional[QoSVector]:
        """The :data:`~repro.execution.engine.Invoker` of this environment.

        Returns observed QoS, or None when the invocation fails (service
        gone, device dead or partitioned, packet loss, a flaky-fault
        window, or the availability lottery).
        """
        # Fault events due by this invocation's timestamp take effect even
        # mid-composition: the engine advances the shared clock between
        # invocations without stepping the environment.
        self._apply_due_faults(timestamp)
        if not self.is_alive(service):
            return None

        device = self.hosting_device(service.service_id)
        if device is not None and self._partitioned(device.device_id, timestamp):
            return None
        link = (
            self.network.link(device.device_id)
            if device is not None and self.network.has_link(device.device_id)
            else None
        )

        advertised = service.advertised_qos
        # An absent availability advertisement means "assume available";
        # an advertised 0.0 means *never* available and must stay 0.0.
        availability = advertised.get("availability")
        if availability is None:
            availability = 1.0
        if self._rng.random() > availability:
            return None
        flaky = self._flaky_probability(service.service_id, timestamp)
        if flaky > 0.0 and self._rng.random() < flaky:
            return None
        if link is not None and self._rng.random() < link.loss_rate.value:
            return None

        spike = self._latency_factor(
            service.service_id,
            device.device_id if device is not None else None,
            timestamp,
        )
        observed: Dict[str, float] = {}
        for name in advertised:
            value = advertised[name]
            noise = 1.0 + self._rng.gauss(0.0, self.config.qos_noise)
            value *= max(noise, 0.0)
            if name == "response_time":
                if device is not None:
                    value *= device.slowdown()
                if link is not None:
                    value += link.transfer_seconds(4096) * 1000.0  # ms
                value *= spike
            observed[name] = value
        if device is not None:
            response_ms = observed.get("response_time", 50.0)
            device.drain(response_ms / 1000.0, active_fraction=1.0)
        return QoSVector(observed, advertised.properties())

    # ------------------------------------------------------------------
    # dynamics
    # ------------------------------------------------------------------
    def step(self, steps: int = 1) -> None:
        """Advance the environment: links fluctuate, batteries drain,
        churn happens, and due fault-schedule events replay."""
        for _ in range(steps):
            self.network.step()
            for device in self._devices.values():
                device.drain(self.config.step_seconds, active_fraction=0.05)
            self._churn()
            self.clock.advance(self.config.step_seconds)
            self._apply_due_faults(self.clock.now())

    def _churn(self) -> None:
        if self.config.churn_leave_rate > 0 and self.registry.services():
            if self._rng.random() < self.config.churn_leave_rate:
                victim = self._rng.choice(self.registry.services())
                self.registry.withdraw(victim.service_id)
                self._parked[victim.service_id] = victim
        if self.config.churn_join_rate > 0 and self._parked:
            if self._rng.random() < self.config.churn_join_rate:
                service_id = self._rng.choice(list(self._parked))
                self.registry.publish(self._parked.pop(service_id))

    def degrade_link(self, device_id: str, fraction: float = 0.5) -> None:
        """Inject a mobility event: the device's connectivity drops."""
        self.network.link(device_id).degrade(fraction)

    def kill_service(self, service_id: str) -> None:
        """Make one provider vanish outright (failure injection).

        Kills *only* the service: co-hosted services and the hosting device
        stay up.  Use :meth:`kill_device` for the device-crash case.
        """
        if service_id in self.registry:
            self.registry.withdraw(service_id)
        # A parked (churn-withdrawn) service that is killed must not rejoin.
        self._parked.pop(service_id, None)

    def kill_device(self, device_id: str) -> None:
        """Crash a device — every service it hosts dies with it."""
        if device_id in self._devices:
            self._devices[device_id].online = False

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def schedule_faults(self, schedule: FaultSchedule) -> None:
        """Queue a fault schedule for deterministic replay.

        Composable: scheduling again merges the new events with whatever
        is still pending (already-applied events are never re-applied).
        """
        self._pending_faults = sorted(
            self._pending_faults + list(schedule), key=lambda e: e.at
        )

    @property
    def pending_faults(self) -> List[FaultEvent]:
        return list(self._pending_faults)

    def active_fault_windows(self, now: Optional[float] = None) -> List[FaultEvent]:
        now = self.clock.now() if now is None else now
        return [e for e in self._active_windows if e.active(now)]

    def _apply_due_faults(self, now: float) -> None:
        while self._pending_faults and self._pending_faults[0].at <= now:
            event = self._pending_faults.pop(0)
            if event.kind in RUNTIME_KINDS:
                # Runtime fault domains belong to the runtime's ChaosPolicy,
                # not the environment — skip them so a mixed schedule can be
                # handed to both layers safely.
                self.obs.counter(
                    "faults_runtime_skipped_total", kind=event.kind.value
                ).inc()
                continue
            self.obs.counter(
                "faults_injected_total", kind=event.kind.value
            ).inc()
            if event.kind is FaultKind.KILL_SERVICE:
                self.kill_service(event.target)
            elif event.kind is FaultKind.KILL_DEVICE:
                self.kill_device(event.target)
            elif event.kind is FaultKind.DEGRADE_LINK:
                if self.network.has_link(event.target):
                    self.network.link(event.target).degrade(event.fraction)
            else:  # window kinds are consulted per invocation
                self._active_windows.append(event)
        if self._active_windows:
            self._active_windows = [
                e for e in self._active_windows if e.until > now
            ]

    def _partitioned(self, device_id: str, now: float) -> bool:
        return any(
            e.kind is FaultKind.PARTITION
            and e.target == device_id
            and e.active(now)
            for e in self._active_windows
        )

    def _flaky_probability(self, service_id: str, now: float) -> float:
        probability = 0.0
        for e in self._active_windows:
            if (
                e.kind is FaultKind.FLAKY_WINDOW
                and e.target == service_id
                and e.active(now)
            ):
                probability = max(probability, e.fail_probability)
        return probability

    def _latency_factor(
        self, service_id: str, device_id: Optional[str], now: float
    ) -> float:
        factor = 1.0
        for e in self._active_windows:
            if (
                e.kind is FaultKind.LATENCY_SPIKE
                and e.target in (service_id, device_id)
                and e.active(now)
            ):
                factor *= e.factor
        return factor
