"""Command-line interface to the QASOM reproduction.

Three subcommands mirror the three ways people use the repository:

* ``scenario`` — run one of the paper's motivating scenarios end to end
  (compose, execute, adapt) and print the outcome;
* ``experiment`` — regenerate one of the paper's figures/tables and print
  the series it plots;
* ``repository`` — dump a scenario's task-class repository as its XML
  bundle (the declarative format behavioural adaptation searches).

``scenario`` and ``experiment`` accept ``--trace`` (print the span tree /
per-stage breakdown of the run), ``--metrics-out PATH`` (write the full
span + metric dump as JSONL), ``--metrics-windows-out PATH`` (write the
per-window pipeline-stage timeline as JSONL) and
``--slo P99MS[:AVAILABILITY]`` (evaluate a windowed SLO over the run and
print the per-window verdicts) — see ``docs/OBSERVABILITY.md``.  ``scenario``
additionally accepts ``--faults FILE`` (replay a JSON fault schedule
against the environment), ``--resilience`` (turn on retry/backoff
policies, circuit breakers and graceful degradation — see
``docs/RESILIENCE.md``) and ``--serve`` (broker ``--requests`` copies of
the scenario request through a pooled
:class:`~repro.api.MiddlewareRuntime` with ``--workers`` workers and
report throughput — see ``docs/RUNTIME.md``).

The CLI imports exclusively from :mod:`repro.api`, the stable blessed
surface.  Invoke as ``python -m repro <command> ...``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional, Sequence

from repro.api import (
    ChaosPolicy,
    FaultSchedule,
    FlightRecorder,
    MiddlewareConfig,
    MiddlewareRuntime,
    QASOM,
    ResilienceConfig,
    RuntimeConfig,
    Scenario,
    Sweep,
    verify_runtime_invariants,
    build_hospital_scenario,
    build_holiday_camp_scenario,
    build_shopping_scenario,
    dump_repository,
    figures,
    observability,
    render_series,
    render_table,
)

SCENARIOS: Dict[str, Callable[..., Scenario]] = {
    "shopping": build_shopping_scenario,
    "hospital": build_hospital_scenario,
    "holiday-camp": build_holiday_camp_scenario,
}

#: Experiment name -> zero-argument callable producing sweeps/tables.
EXPERIMENTS: Dict[str, Callable[[], object]] = {
    "table-iv1": figures.table_iv1,
    "fig-vi5a": figures.fig_vi5a,
    "fig-vi5b": figures.fig_vi5b,
    "fig-vi6a": figures.fig_vi6a,
    "fig-vi6b": figures.fig_vi6b,
    "fig-vi7": figures.fig_vi7,
    "fig-vi8": figures.fig_vi8,
    "fig-vi9": figures.fig_vi9,
    "fig-vi10": figures.fig_vi10,
    "fig-vi11": figures.fig_vi11,
    "fig-vi12": figures.fig_vi12,
    "fig-vi13": figures.fig_vi13,
    "ch4-summary": figures.exp_ch4_summary,
    "ch5-homeomorphism": figures.exp_ch5_homeomorphism,
    "adaptation-effectiveness": figures.exp_adaptation_effectiveness,
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the three subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="QASOM — QoS-aware service-oriented middleware "
                    "(paper reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    scenario = subparsers.add_parser(
        "scenario", help="run a paper scenario end to end"
    )
    scenario.add_argument("name", choices=sorted(SCENARIOS))
    scenario.add_argument("--seed", type=int, default=None,
                          help="environment seed (scenario default if unset)")
    scenario.add_argument("--services", type=int, default=None,
                          help="candidate services per activity")
    scenario.add_argument("--faults", metavar="FILE", default=None,
                          help="replay a JSON fault schedule against the "
                               "environment (see docs/RESILIENCE.md)")
    scenario.add_argument("--resilience", action="store_true",
                          help="enable retry/backoff policies, circuit "
                               "breakers and graceful degradation")
    scenario.add_argument("--serve", action="store_true",
                          help="broker the request through a pooled "
                               "MiddlewareRuntime and report throughput "
                               "(see docs/RUNTIME.md)")
    scenario.add_argument("--chaos", metavar="FILE", default=None,
                          help="with --serve: inject the runtime fault "
                               "kinds of a JSON fault schedule (worker "
                               "crashes/stalls, snapshot failures, commit "
                               "delays) into the pooled runtime; "
                               "service/device kinds in the same file are "
                               "replayed by the environment (see "
                               "docs/RUNTIME.md)")
    scenario.add_argument("--forensics", metavar="DIR", default=None,
                          help="with --serve: record runtime events on a "
                               "flight-recorder ring and dump forensic "
                               "bundles (JSON) to DIR on worker crashes, "
                               "invariant violations and SLO breaches (see "
                               "docs/OBSERVABILITY.md)")
    scenario.add_argument("--workers", type=int, default=4,
                          help="worker threads for --serve (default 4)")
    scenario.add_argument("--requests", type=int, default=16,
                          help="requests to broker under --serve "
                               "(default 16)")
    _add_observability_flags(scenario)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate a paper figure or table"
    )
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))
    _add_observability_flags(experiment)

    repository = subparsers.add_parser(
        "repository", help="dump a scenario's task-class repository"
    )
    repository.add_argument("scenario", choices=sorted(SCENARIOS))

    return parser


def _parse_slo(text: str):
    """``P99MS[:AVAILABILITY]`` -> an :class:`~repro.api.Slo` (argparse type)."""
    p99_text, _, availability_text = text.partition(":")
    return observability.Slo(
        p99_ms=float(p99_text),
        availability=float(availability_text) if availability_text else None,
    )


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", action="store_true",
        help="trace the run and print the span tree "
             "(per-stage breakdown for experiments)",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the span + metric dump as JSONL to PATH",
    )
    parser.add_argument(
        "--metrics-windows-out", metavar="PATH", default=None,
        help="write the per-window pipeline-stage timeline as JSONL to "
             "PATH (see docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--slo", metavar="P99MS[:AVAILABILITY]", type=_parse_slo,
        default=None,
        help="evaluate a windowed SLO over the run: a p99 latency bound "
             "in milliseconds, optionally with an availability floor "
             "(e.g. 250 or 250:0.95)",
    )


def _wants_observability(args: argparse.Namespace) -> bool:
    return bool(args.trace or args.metrics_out or args.metrics_windows_out
                or args.slo or getattr(args, "forensics", None))


def _export_observability(args: argparse.Namespace, obs, out,
                          forensics=None) -> None:
    if args.metrics_out:
        records = observability.write_jsonl(obs, args.metrics_out)
        print(f"\nobservability: wrote {records} records to "
              f"{args.metrics_out}", file=out)
    if not (args.metrics_windows_out or args.slo):
        return
    windows = observability.StageWindows()
    windows.ingest_observability(obs)
    if args.metrics_windows_out:
        records = observability.write_window_jsonl(
            windows, args.metrics_windows_out
        )
        print(f"\nobservability: wrote {records} window records to "
              f"{args.metrics_windows_out}", file=out)
    if args.slo:
        print("\nwindowed timeline "
              f"({windows.ingested} spans ingested):", file=out)
        print(observability.render_window_table(windows), file=out)
        # End-to-end latency lives in the runtime's per-request spans
        # when brokered (--serve); the serial path has no request spans,
        # so fall back to the execution stage.
        stage = ("request" if len(windows.stage("request")) else "execution")
        verdicts = args.slo.evaluate(
            windows.stage(stage).series(), windows.availability(),
            forensics=forensics,
        )
        print(f"\nSLO on the {stage!r} stage:", file=out)
        print(observability.render_slo_table(verdicts, args.slo), file=out)
        print("SLO " + ("PASSED" if all(v.passed for v in verdicts)
                        else "VIOLATED"), file=out)


def _report_forensics(args: argparse.Namespace, runtime, out) -> None:
    """Print the flight-recorder / forensic-bundle summary for --forensics."""
    if not args.forensics or runtime.forensics is None:
        return
    paths = runtime.forensics.paths
    print(f"\nforensics: {runtime.recorder.recorded_total} runtime events "
          f"recorded, {len(paths)} bundle"
          f"{'s' if len(paths) != 1 else ''} in {args.forensics}", file=out)
    for path in paths:
        print(f"  {path}", file=out)


def _build_middleware(args: argparse.Namespace, scenario: Scenario, out):
    if args.faults:
        schedule = FaultSchedule.load(args.faults)
        scenario.environment.schedule_faults(schedule)
        print(f"faults: replaying {len(schedule)} events from "
              f"{args.faults}", file=out)
    config = None
    if args.resilience:
        config = MiddlewareConfig(resilience=ResilienceConfig(enabled=True))
    obs = None
    if _wants_observability(args):
        obs = observability.Observability(clock=scenario.environment.clock)
    middleware = QASOM.for_environment(
        scenario.environment,
        scenario.properties,
        ontology=scenario.ontology,
        repository=scenario.repository,
        config=config,
        observability=obs,
    )
    return middleware, obs


def _run_scenario(args: argparse.Namespace, out) -> int:
    kwargs = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.services is not None:
        kwargs["services_per_activity"] = args.services
    scenario = SCENARIOS[args.name](**kwargs)
    middleware, obs = _build_middleware(args, scenario, out)

    print(f"scenario: {scenario.name}", file=out)
    print(f"services published: {len(scenario.environment.registry)}",
          file=out)
    print(f"task: {scenario.task.name} "
          f"({scenario.task.size()} activities)", file=out)
    for constraint in scenario.request.constraints:
        print(f"  constraint: {constraint}", file=out)

    if args.serve:
        return _serve_scenario(args, scenario, middleware, obs, out)
    if args.chaos:
        print("error: --chaos requires --serve (runtime faults are "
              "injected into the worker pool)", file=out)
        return 2
    if args.forensics:
        print("error: --forensics requires --serve (the flight recorder "
              "rides on the pooled runtime)", file=out)
        return 2

    result = middleware.run(scenario.request)
    plan = result.plan
    print(f"\ncomposition utility: {plan.utility:.3f} "
          f"(feasible: {plan.feasible})", file=out)
    for activity, selection in plan.selections.items():
        print(f"  {activity:12s} -> {selection.primary.name}", file=out)
    print(f"aggregated QoS: {plan.aggregated_qos}", file=out)
    status = "succeeded" if result.report.succeeded else "FAILED"
    if result.report.degraded:
        status += " (degraded)"
    print(f"\nexecution {status}: "
          f"{len(result.report.invocations)} invocations, "
          f"{result.report.elapsed:.3f} s simulated, "
          f"cost {result.report.total_cost:.2f}", file=out)
    if result.partial is not None:
        print(f"degraded: skipped "
              f"{', '.join(result.partial.skipped_activities)}; "
              f"utility {result.partial.planned_utility:.3f} -> "
              f"{result.partial.degraded_utility:.3f}", file=out)
    if result.adaptations:
        print(f"adaptations: "
              f"{[a.action.value for a in result.adaptations]}", file=out)
    if obs is not None:
        if args.trace:
            print(f"\ntrace ({len(obs.spans)} root span"
                  f"{'s' if len(obs.spans) != 1 else ''}):", file=out)
            print(observability.render_span_tree(obs.spans), file=out)
        _export_observability(args, obs, out)
    return 0 if result.report.succeeded else 1


def _serve_scenario(args, scenario, middleware, obs, out) -> int:
    """Broker N copies of the scenario request through the pooled runtime."""
    count = max(1, args.requests)
    config = RuntimeConfig(
        workers=max(1, args.workers),
        queue_depth=max(count, 1),
        flight_recorder=FlightRecorder() if args.forensics else None,
        forensics_dir=args.forensics,
    )
    chaos = None
    if args.chaos:
        schedule = FaultSchedule.load(args.chaos)
        environment_events = schedule.environment_events()
        if len(environment_events):
            scenario.environment.schedule_faults(environment_events)
        kwargs = {"observability": obs} if obs is not None else {}
        chaos = ChaosPolicy.from_schedule(
            schedule, scenario.environment.clock, **kwargs
        )
        print(f"chaos: {len(schedule.runtime_events())} runtime events, "
              f"{len(environment_events)} environment events from "
              f"{args.chaos}", file=out)
    print(f"\nserve: {count} requests, {config.workers} workers", file=out)
    started = time.perf_counter()
    with MiddlewareRuntime(middleware, config, chaos=chaos) as runtime:
        handles = [runtime.submit(scenario.request) for _ in range(count)]
        runtime.drain()
        if chaos is not None:
            report = verify_runtime_invariants(runtime, handles)
    elapsed = time.perf_counter() - started

    succeeded = sum(
        1 for h in handles
        if h.exception() is None and h.result().report.succeeded
    )
    latencies = sorted(h.total_seconds or 0.0 for h in handles)
    p50 = latencies[len(latencies) // 2]
    p95 = latencies[min(len(latencies) - 1, int(len(latencies) * 0.95))]
    print(f"brokered {count} requests in {elapsed:.3f} s wall "
          f"({count / elapsed:.1f} req/s); {succeeded} succeeded", file=out)
    print(f"latency: p50 {p50 * 1000:.1f} ms, p95 {p95 * 1000:.1f} ms",
          file=out)
    print(f"discovery batching: {runtime.batcher.lookups} lookups, "
          f"{runtime.batcher.computed} computed, "
          f"{runtime.batcher.coalesced} coalesced", file=out)
    print(f"request coalescing: {runtime.coalescer.lookups} lookups, "
          f"{runtime.coalescer.computed} composed, "
          f"{runtime.coalescer.coalesced} coalesced", file=out)
    print(f"snapshots: {runtime.snapshots.refreshes} refreshes for "
          f"{runtime.snapshots.acquires} acquires", file=out)
    if chaos is not None:
        print(f"chaos: fired {len(chaos.fired)} faults "
              f"({', '.join(f.event.kind.value for f in chaos.fired) or '-'})"
              f", {len(chaos.pending)} pending", file=out)
        print(f"supervision: {runtime.supervisor.restarts} worker restarts, "
              f"{runtime.requeued} requeues, retry budget "
              f"{runtime.retry_budget.tokens:.1f} tokens "
              f"({runtime.retry_budget.denied} denied)", file=out)
        verdict = "OK" if report.ok else "; ".join(report.violations)
        print(f"invariants: {verdict}", file=out)
        if not report.ok:
            if runtime.forensics is not None:
                runtime.forensics.trigger(
                    "invariant_violation", violations=report.violations
                )
            _report_forensics(args, runtime, out)
            return 1
    if obs is not None:
        if args.trace:
            print(f"\ntrace ({len(obs.spans)} root span"
                  f"{'s' if len(obs.spans) != 1 else ''}):", file=out)
            print(observability.render_span_tree(obs.spans), file=out)
        _export_observability(args, obs, out, forensics=runtime.forensics)
    _report_forensics(args, runtime, out)
    # Exit code reflects broker health, not workload luck: a rejected,
    # expired or errored request fails the run; an execution that ran to
    # a failed report (the availability lottery) is normal operation and
    # is reported in the "succeeded" count above.
    return 0 if all(h.exception() is None for h in handles) else 1


def _print_experiment_result(result, out) -> None:
    if isinstance(result, Sweep):
        print(render_series(result), file=out)
    elif isinstance(result, dict):
        for value in result.values():
            _print_experiment_result(value, out)
    elif isinstance(result, list):
        width = max((len(row) for row in result), default=0)
        headers = [f"col{i}" for i in range(width)]
        print(render_table(headers, result), file=out)
    else:
        print(result, file=out)


def _run_experiment(args: argparse.Namespace, out) -> int:
    if not _wants_observability(args):
        result = EXPERIMENTS[args.name]()
        _print_experiment_result(result, out)
        return 0

    # Components built inside the experiment (selectors, engines …) pick
    # up the ambient observability installed for the duration of the run.
    with observability.enabled() as obs:
        result = EXPERIMENTS[args.name]()
    _print_experiment_result(result, out)
    if args.trace:
        breakdown = observability.stage_breakdown(obs.spans)
        print("\nper-stage breakdown:", file=out)
        print(observability.render_breakdown(breakdown), file=out)
    _export_observability(args, obs, out)
    return 0


def _run_repository(args: argparse.Namespace, out) -> int:
    scenario = SCENARIOS[args.scenario]()
    print(dump_repository(scenario.repository), file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "scenario":
        return _run_scenario(args, out)
    if args.command == "experiment":
        return _run_experiment(args, out)
    if args.command == "repository":
        return _run_repository(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
