"""Flight recorder: a bounded ring buffer of structured runtime events.

Spans answer "how long did each stage take"; the flight recorder answers
"what *happened*, in what order, across all requests" — the black-box a
crashed worker or a breached SLO can be debugged from after the fact.
Every lifecycle edge the runtime crosses (admission verdicts, adaptive
depth changes, worker pickups, chaos injections, stalls, crashes,
restarts, requeues, retry-budget denials, commits, deadline expiries)
drops one :class:`RuntimeEvent` into the ring, stamped with wall time,
simulated time, the request's trace id, and a global sequence number.

The ring is bounded (oldest events fall off) and guarded by one lock, so
recording from eight worker threads is safe and cheap; the disabled path
(:data:`NULL_RECORDER`) is a shared singleton whose :meth:`record` is a
single no-op call, keeping the PR 1 <5% disabled-observability overhead
gate intact.

Event kinds are dotted strings (``"worker.crash"``) rather than an enum so
forensic bundles stay greppable JSON and downstream consumers can add
kinds without touching this module; the constants below name the kinds
the runtime emits today.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

# -- event kinds emitted by the runtime --------------------------------
ADMISSION_ACCEPT = "admission.accept"
ADMISSION_REJECT = "admission.reject"
ADMISSION_DEPTH = "admission.depth"
WORKER_PICKUP = "worker.pickup"
WORKER_CRASH = "worker.crash"
WORKER_RESTART = "worker.restart"
CHAOS_INJECTED = "chaos.injected"
REQUEST_REQUEUED = "request.requeued"
RETRY_DENIED = "retry.denied"
COMMIT = "commit"
DEADLINE_EXPIRED = "deadline.expired"
REQUEST_DONE = "request.done"
REQUEST_FAILED = "request.failed"
SLO_BREACH = "slo.breach"
INVARIANT_VIOLATION = "invariant.violation"


@dataclass(frozen=True)
class RuntimeEvent:
    """One structured entry in the flight-recorder ring.

    ``seq`` is a recorder-wide monotonic sequence number — the total order
    events were recorded in, even when wall timestamps collide.  ``sim``
    is ``None`` when no simulated clock was attached.  ``trace_id`` links
    the event to a request's span tree (``None`` for events that are not
    about one request, e.g. adaptive-depth changes).
    """

    seq: int
    kind: str
    wall: float
    sim: Optional[float] = None
    trace_id: Optional[str] = None
    attributes: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (used verbatim in forensic bundles)."""
        record: Dict[str, Any] = {
            "seq": self.seq,
            "kind": self.kind,
            "wall": self.wall,
        }
        if self.sim is not None:
            record["sim"] = self.sim
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        return record


class FlightRecorder:
    """Bounded, thread-safe ring buffer of :class:`RuntimeEvent`\\ s.

    ``capacity`` bounds memory: once full, recording a new event evicts
    the oldest (the global ``seq`` keeps the record of how many were ever
    recorded).  ``clock`` is the environment's simulated clock; attach one
    later with :meth:`attach_clock` — the runtime does this when the
    recorder is created before the environment exists.
    """

    enabled = True

    def __init__(self, capacity: int = 1024, clock: Optional[Any] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.clock = clock
        self._events: Deque[RuntimeEvent] = deque(maxlen=capacity)
        self._recorded = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def attach_clock(self, clock: Any) -> None:
        """Adopt a simulated clock for the ``sim`` stamp of later events."""
        self.clock = clock

    def record(
        self,
        kind: str,
        /,
        trace_id: Optional[str] = None,
        **attributes: Any,
    ) -> RuntimeEvent:
        """Append one event (thread-safe); returns the recorded event.

        ``kind`` is positional-only so an attribute may itself be named
        ``kind`` without colliding with the parameter.
        """
        clock = self.clock
        sim = clock.now() if clock is not None else None
        wall = time.time()
        with self._lock:
            self._recorded += 1
            event = RuntimeEvent(
                seq=self._recorded,
                kind=kind,
                wall=wall,
                sim=sim,
                trace_id=trace_id,
                attributes=dict(attributes) if attributes else {},
            )
            self._events.append(event)
        return event

    # -- read side ------------------------------------------------------
    def events(self) -> List[RuntimeEvent]:
        """Snapshot of the ring, oldest first (safe while recording)."""
        with self._lock:
            return list(self._events)

    def tail(self, n: int) -> List[RuntimeEvent]:
        """The most recent ``n`` events, oldest first."""
        with self._lock:
            if n >= len(self._events):
                return list(self._events)
            return list(self._events)[-n:]

    def for_trace(self, trace_id: str) -> List[RuntimeEvent]:
        """Every retained event stamped with ``trace_id``, oldest first."""
        with self._lock:
            return [e for e in self._events if e.trace_id == trace_id]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def recorded_total(self) -> int:
        """How many events were ever recorded (evicted ones included)."""
        with self._lock:
            return self._recorded

    def __repr__(self) -> str:
        return (
            f"FlightRecorder(capacity={self.capacity}, "
            f"retained={len(self)})"
        )


class _NullRecorder:
    """Disabled flight recorder — records nothing, allocation-free."""

    enabled = False
    capacity = 0
    clock = None

    def attach_clock(self, clock: Any) -> None:
        """Ignore the clock: nothing will ever be stamped."""

    def record(
        self,
        kind: str,
        /,
        trace_id: Optional[str] = None,
        **attributes: Any,
    ) -> None:
        """Drop the event."""
        return None

    def events(self) -> tuple:
        """Always empty."""
        return ()

    def tail(self, n: int) -> tuple:
        """Always empty."""
        return ()

    def for_trace(self, trace_id: str) -> tuple:
        """Always empty."""
        return ()

    recorded_total = 0

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NULL_RECORDER"


#: Shared disabled recorder; the runtime falls back to it when no
#: ``RuntimeConfig(flight_recorder=...)`` is supplied.
NULL_RECORDER = _NullRecorder()
