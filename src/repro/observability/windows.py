"""Windowed tail-latency telemetry: per-window percentile series.

The cumulative histograms in :mod:`repro.observability.metrics` answer
"what was p99 since the process started?" — useless for the Ch. VI
question of how response time behaves *under load over time*.  This
module adds the time axis:

* :class:`WindowedHistogram` — a ring buffer of fixed-bucket
  :class:`~repro.observability.metrics.Histogram` instances keyed to a
  clock (normally the environment's simulated clock), producing a
  per-window ``count/mean/p50/p95/p99`` series
  (:class:`WindowStats`) with bounded memory;
* :class:`StageWindows` — the pipeline-stage aggregator: it is fed from
  the *existing* span tracer (no new instrumentation call sites), mapping
  span names onto the stages of the request pipeline — admission-wait,
  discovery, selection, binding, execution, commit — and windowing each
  stage's wall durations by the span's simulated start time;
* :class:`Slo` — a windowed SLO evaluator (``p99_ms`` latency bound +
  ``availability`` floor) producing a per-window pass/fail series
  (:class:`SloVerdict`);
* exporters — :func:`write_window_jsonl` (one JSON object per window per
  stage) and :func:`render_window_table` (a console table with a
  sparkline of each stage's per-window p99).

Windows are *aligned* to multiples of ``window_seconds`` on the clock
axis (window ``i`` covers ``[i·w, (i+1)·w)``), so two runs over the same
simulated timeline bucket identically — the determinism the adaptive
admission controller and the tail-latency benchmark gates rely on.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import (
    Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple,
)

from repro.observability.exporters import write_atomic
from repro.observability.metrics import DEFAULT_BUCKETS, Histogram
from repro.observability.spans import Span

#: Pipeline stages in presentation order (the span-name mapping below
#: feeds them; ``admission-wait`` comes from the ``queue_ms`` attribute
#: of ``runtime.request`` spans rather than a span's own duration).
PIPELINE_STAGES: Tuple[str, ...] = (
    "admission-wait", "discovery", "selection", "binding", "execution",
    "commit", "request",
)

#: Span name -> pipeline stage.  ``compose`` spans are deliberately not a
#: stage of their own: their time is already attributed to discovery +
#: selection children (serial path) or reported as ``request`` minus the
#: other stages (runtime path).
SPAN_STAGE_NAMES: Mapping[str, str] = {
    "discovery": "discovery",
    "qassa.select": "selection",
    "bind": "binding",
    "execute": "execution",
    "runtime.commit": "commit",
    "runtime.request": "request",
}

#: Default number of windows a ring buffer retains.
DEFAULT_MAX_WINDOWS = 512


@dataclass(frozen=True)
class WindowStats:
    """The per-window summary row of one windowed series.

    ``exemplar_trace_id`` / ``exemplar_value`` name the worst observation
    the window saw, when observations carried exemplars — the concrete
    request behind the window's tail percentile.
    """

    index: int
    start: float
    end: float
    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float
    exemplar_trace_id: Optional[str] = None
    exemplar_value: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (what the timeline exporter writes)."""
        record = {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "min": self.minimum,
            "max": self.maximum,
        }
        if self.exemplar_trace_id is not None:
            record["exemplar_trace_id"] = self.exemplar_trace_id
            record["exemplar_value"] = self.exemplar_value
        return record


class StatsWindow:
    """One window of the ring: its index, clock bounds, and histogram."""

    __slots__ = ("index", "start", "end", "histogram")

    def __init__(
        self, index: int, window_seconds: float, histogram: Histogram
    ) -> None:
        self.index = index
        self.start = index * window_seconds
        self.end = (index + 1) * window_seconds
        self.histogram = histogram

    def stats(self) -> WindowStats:
        """Summarise the window's histogram into a :class:`WindowStats`."""
        h = self.histogram
        empty = h.count == 0
        exemplar = h.exemplar()
        return WindowStats(
            index=self.index,
            start=self.start,
            end=self.end,
            count=h.count,
            mean=h.mean,
            p50=h.quantile(0.50),
            p95=h.quantile(0.95),
            p99=h.quantile(0.99),
            minimum=0.0 if empty else h.minimum,
            maximum=0.0 if empty else h.maximum,
            exemplar_trace_id=exemplar[1] if exemplar else None,
            exemplar_value=exemplar[0] if exemplar else None,
        )

    def __repr__(self) -> str:
        return (
            f"StatsWindow(index={self.index}, "
            f"[{self.start:g}, {self.end:g}), "
            f"count={self.histogram.count})"
        )


class WindowedHistogram:
    """A ring buffer of per-window histograms keyed to a clock.

    ``observe(value, at=timestamp)`` files ``value`` into the window
    containing ``timestamp``; with no explicit ``at`` the attached
    ``clock`` is read.  Windows are created lazily (a clock jump across
    quiet windows costs nothing) and evicted oldest-first beyond
    ``max_windows``.  Observations that land *before* the oldest retained
    window are counted in :attr:`dropped` instead of corrupting evicted
    history.
    """

    def __init__(
        self,
        name: str,
        *,
        window_seconds: float = 1.0,
        max_windows: int = DEFAULT_MAX_WINDOWS,
        buckets: Optional[Sequence[float]] = None,
        clock: Optional[Any] = None,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if max_windows < 1:
            raise ValueError("a windowed histogram needs >= 1 window")
        self.name = name
        self.window_seconds = float(window_seconds)
        self.max_windows = max_windows
        self.buckets = tuple(sorted(buckets)) if buckets else DEFAULT_BUCKETS
        self.clock = clock
        #: Observations older than the oldest retained window.
        self.dropped = 0
        #: Observations filed across all retained windows.
        self.observed = 0
        self._windows: Dict[int, StatsWindow] = {}

    # ------------------------------------------------------------------
    def index_of(self, at: float) -> int:
        """The window index containing clock timestamp ``at``."""
        return int(math.floor(at / self.window_seconds))

    def observe(
        self,
        value: float,
        at: Optional[float] = None,
        exemplar: Optional[str] = None,
    ) -> None:
        """File one observation at clock time ``at`` (default: now).

        ``exemplar`` tags the observation with a request identity (trace
        id); the window remembers its worst exemplar so per-window stats
        can point at the exact request behind the tail.
        """
        if at is None:
            if self.clock is None:
                raise ValueError(
                    "observe() needs an explicit timestamp when no clock "
                    "is attached"
                )
            at = self.clock.now()
        index = self.index_of(at)
        window = self._windows.get(index)
        if window is None:
            if self._windows and index < min(self._windows):
                self.dropped += 1
                return
            window = StatsWindow(
                index, self.window_seconds,
                Histogram(self.name, buckets=self.buckets),
            )
            self._windows[index] = window
            self._evict()
        window.histogram.observe(value, exemplar=exemplar)
        self.observed += 1

    def _evict(self) -> None:
        while len(self._windows) > self.max_windows:
            del self._windows[min(self._windows)]

    # ------------------------------------------------------------------
    def window(self, index: int) -> Optional[StatsWindow]:
        """The retained window at ``index``, or None."""
        return self._windows.get(index)

    def windows(self) -> List[StatsWindow]:
        """All retained windows, oldest first."""
        return [self._windows[i] for i in sorted(self._windows)]

    def series(self, fill_gaps: bool = True) -> List[WindowStats]:
        """Per-window stats, oldest first.

        With ``fill_gaps`` (the default), quiet windows between the
        oldest and newest retained window appear as zero-count rows, so
        the series is a contiguous timeline rather than a sparse one.
        """
        if not self._windows:
            return []
        stats = []
        indexes = sorted(self._windows)
        span = range(indexes[0], indexes[-1] + 1) if fill_gaps else indexes
        for index in span:
            window = self._windows.get(index)
            if window is not None:
                stats.append(window.stats())
            else:
                start = index * self.window_seconds
                stats.append(WindowStats(
                    index=index, start=start,
                    end=start + self.window_seconds, count=0, mean=0.0,
                    p50=0.0, p95=0.0, p99=0.0, minimum=0.0, maximum=0.0,
                ))
        return stats

    def merged(self) -> Histogram:
        """One cumulative histogram over every retained window."""
        merged = Histogram(self.name, buckets=self.buckets)
        for window in self._windows.values():
            merged.merge(window.histogram)
        return merged

    def __len__(self) -> int:
        return len(self._windows)

    def __repr__(self) -> str:
        return (
            f"WindowedHistogram({self.name!r}, windows={len(self._windows)}, "
            f"observed={self.observed}, dropped={self.dropped})"
        )


class StageWindows:
    """Per-pipeline-stage windowed histograms fed from finished spans.

    The aggregator walks span trees the tracer already collects — no new
    instrumentation call sites — and files each recognised span's
    **wall-clock duration** (seconds) into its stage's
    :class:`WindowedHistogram`, windowed by the span's **simulated start
    time** (falling back to wall offsets from the first ingested span
    when no simulated clock was attached).

    ``runtime.request`` spans additionally contribute:

    * their ``queue_ms`` attribute as the ``admission-wait`` stage;
    * their terminal ``status`` attribute to the per-window outcome
      tally behind :meth:`availability`.
    """

    def __init__(
        self,
        *,
        window_seconds: float = 1.0,
        max_windows: int = DEFAULT_MAX_WINDOWS,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.window_seconds = float(window_seconds)
        self.max_windows = max_windows
        self.buckets = buckets
        self._stages: Dict[str, WindowedHistogram] = {}
        self._outcomes: Dict[int, Dict[str, int]] = {}
        self._wall_epoch: Optional[float] = None
        self.ingested = 0

    # ------------------------------------------------------------------
    def stage(self, name: str) -> WindowedHistogram:
        """The (lazily created) windowed histogram of one stage."""
        histogram = self._stages.get(name)
        if histogram is None:
            histogram = self._stages[name] = WindowedHistogram(
                name,
                window_seconds=self.window_seconds,
                max_windows=self.max_windows,
                buckets=self.buckets,
            )
        return histogram

    def stages(self) -> Dict[str, WindowedHistogram]:
        """Stage name -> series, in :data:`PIPELINE_STAGES` order."""
        ordered = {
            name: self._stages[name]
            for name in PIPELINE_STAGES if name in self._stages
        }
        for name in sorted(self._stages):
            ordered.setdefault(name, self._stages[name])
        return ordered

    # ------------------------------------------------------------------
    def _timestamp(self, span: Span) -> float:
        if span.started_sim is not None:
            return span.started_sim
        if self._wall_epoch is None:
            self._wall_epoch = span.started_wall
        return span.started_wall - self._wall_epoch

    def ingest(self, spans: Iterable[Span]) -> int:
        """Walk root spans (and descendants); returns spans recognised."""
        recognised = 0
        for root in spans:
            for span in root.walk():
                stage_name = SPAN_STAGE_NAMES.get(span.name)
                if stage_name is None:
                    continue
                at = self._timestamp(span)
                self.stage(stage_name).observe(
                    span.duration, at=at, exemplar=span.trace_id
                )
                recognised += 1
                if span.name != "runtime.request":
                    continue
                queue_ms = span.attributes.get("queue_ms")
                if queue_ms is not None:
                    self.stage("admission-wait").observe(
                        float(queue_ms) / 1e3, at=at, exemplar=span.trace_id
                    )
                status = str(span.attributes.get("status", "done"))
                tally = self._outcomes.setdefault(
                    self.stage(stage_name).index_of(at), {}
                )
                tally[status] = tally.get(status, 0) + 1
        self.ingested += recognised
        return recognised

    def ingest_observability(self, observability: Any) -> int:
        """Ingest every finished root span of an observability instance."""
        return self.ingest(getattr(observability, "spans", ()) or ())

    # ------------------------------------------------------------------
    def outcomes(self) -> Dict[int, Dict[str, int]]:
        """Per-window ``runtime.request`` terminal-status tallies."""
        return {index: dict(tally) for index, tally in self._outcomes.items()}

    def availability(self) -> Dict[int, float]:
        """Per-window fraction of requests that completed (``done``)."""
        series = {}
        for index, tally in sorted(self._outcomes.items()):
            total = sum(tally.values())
            series[index] = (tally.get("done", 0) / total) if total else 1.0
        return series

    def __repr__(self) -> str:
        return (
            f"StageWindows(stages={sorted(self._stages)}, "
            f"ingested={self.ingested})"
        )


# ----------------------------------------------------------------------
# SLO evaluation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SloVerdict:
    """One window's pass/fail against an :class:`Slo`.

    ``exemplar_trace_id`` names the window's worst request (when the
    underlying observations carried exemplars) — the request to pull a
    forensic bundle or span tree for when the verdict is a failure.
    """

    index: int
    start: float
    p99_ms: float
    availability: Optional[float]
    passed: bool
    failures: Tuple[str, ...] = ()
    exemplar_trace_id: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "index": self.index,
            "start": self.start,
            "p99_ms": self.p99_ms,
            "availability": self.availability,
            "passed": self.passed,
            "failures": list(self.failures),
            "exemplar_trace_id": self.exemplar_trace_id,
        }


@dataclass(frozen=True)
class Slo:
    """A windowed service-level objective.

    ``p99_ms`` bounds each window's p99 latency (milliseconds);
    ``availability`` floors each window's completed-request fraction.
    Either may be ``None`` (not part of the objective).  Empty windows
    pass trivially — no traffic, no violation.
    """

    p99_ms: Optional[float] = None
    availability: Optional[float] = None

    def __post_init__(self) -> None:
        if self.p99_ms is None and self.availability is None:
            raise ValueError("an SLO needs a p99_ms bound, an availability "
                             "floor, or both")
        if self.p99_ms is not None and self.p99_ms <= 0:
            raise ValueError("p99_ms must be positive")
        if self.availability is not None and not 0 <= self.availability <= 1:
            raise ValueError("availability must be a fraction in [0, 1]")

    def evaluate(
        self,
        windows: Sequence[WindowStats],
        availability: Optional[Mapping[int, float]] = None,
        forensics: Optional[Any] = None,
    ) -> List[SloVerdict]:
        """Judge each latency window (seconds-valued) against the SLO.

        ``availability`` maps window index -> completed fraction (e.g.
        :meth:`StageWindows.availability` or a driver report's); windows
        absent from the mapping are judged on latency alone.

        ``forensics`` (a
        :class:`~repro.observability.forensics.ForensicReporter`) turns a
        breach into an anomaly trigger: each failed verdict dumps a
        ``slo_breach`` bundle scoped to the window's exemplar request.
        """
        verdicts = []
        for stats in windows:
            failures: List[str] = []
            p99_ms = stats.p99 * 1e3
            window_availability = (
                availability.get(stats.index) if availability else None
            )
            if stats.count:
                if self.p99_ms is not None and p99_ms > self.p99_ms:
                    failures.append(
                        f"p99 {p99_ms:.1f} ms > {self.p99_ms:g} ms"
                    )
                if (
                    self.availability is not None
                    and window_availability is not None
                    and window_availability < self.availability
                ):
                    failures.append(
                        f"availability {window_availability:.3f} < "
                        f"{self.availability:g}"
                    )
            verdict = SloVerdict(
                index=stats.index,
                start=stats.start,
                p99_ms=p99_ms,
                availability=window_availability,
                passed=not failures,
                failures=tuple(failures),
                exemplar_trace_id=stats.exemplar_trace_id,
            )
            verdicts.append(verdict)
            if forensics is not None and not verdict.passed:
                forensics.trigger(
                    "slo_breach",
                    trace_id=verdict.exemplar_trace_id,
                    window=verdict.index,
                    window_start=verdict.start,
                    failures=list(verdict.failures),
                    slo=str(self),
                )
        return verdicts

    def passed(
        self,
        windows: Sequence[WindowStats],
        availability: Optional[Mapping[int, float]] = None,
    ) -> bool:
        """Whether every window passes."""
        return all(v.passed for v in self.evaluate(windows, availability))

    def __str__(self) -> str:
        parts = []
        if self.p99_ms is not None:
            parts.append(f"p99<={self.p99_ms:g}ms")
        if self.availability is not None:
            parts.append(f"availability>={self.availability:g}")
        return " & ".join(parts)


# ----------------------------------------------------------------------
# timeline exporters
# ----------------------------------------------------------------------
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A unicode sparkline of a value series (empty string for none)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK_LEVELS[0] * len(values)
    scale = (len(_SPARK_LEVELS) - 1) / (hi - lo)
    return "".join(
        _SPARK_LEVELS[int((value - lo) * scale)] for value in values
    )


def window_records(stage_windows: StageWindows) -> List[Dict[str, Any]]:
    """The timeline as JSON-serialisable records, one per stage-window."""
    records: List[Dict[str, Any]] = []
    availability = stage_windows.availability()
    for stage_name, histogram in stage_windows.stages().items():
        for stats in histogram.series():
            record = stats.to_dict()
            record["type"] = "window"
            record["stage"] = stage_name
            record["window_seconds"] = histogram.window_seconds
            if stage_name == "request" and stats.index in availability:
                record["availability"] = availability[stats.index]
            records.append(record)
    return records


def write_window_jsonl(
    stage_windows: StageWindows, stream_or_path: Any
) -> int:
    """Write the per-window timeline as JSONL; returns records written."""
    records = window_records(stage_windows)

    def _write(handle: Any) -> None:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    if hasattr(stream_or_path, "write"):
        _write(stream_or_path)
    else:
        write_atomic(stream_or_path, _write)
    return len(records)


def render_window_table(
    stage_windows: StageWindows, value: str = "p99"
) -> str:
    """The console timeline: one row per stage with a p99 sparkline.

    ``value`` picks the sparklined statistic (an attribute of
    :class:`WindowStats`: ``p50``/``p95``/``p99``/``mean``/``count``).
    """
    headers = ("stage", "windows", "count", "mean", "p50", "p95", "p99",
               f"{value}/window")
    rows = []
    for stage_name, histogram in stage_windows.stages().items():
        series = histogram.series()
        merged = histogram.merged().summary()
        rows.append((
            stage_name,
            str(len(series)),
            str(int(merged["count"])),
            f"{merged['mean'] * 1e3:.2f}ms",
            f"{merged['p50'] * 1e3:.2f}ms",
            f"{merged['p95'] * 1e3:.2f}ms",
            f"{merged['p99'] * 1e3:.2f}ms",
            sparkline([getattr(s, value) for s in series]),
        ))
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_slo_table(verdicts: Sequence[SloVerdict], slo: Slo) -> str:
    """Per-window SLO pass/fail, ready to print under the timeline."""
    headers = ("window", "start", "p99", "availability", "verdict")
    rows = []
    for verdict in verdicts:
        availability = (
            f"{verdict.availability:.3f}"
            if verdict.availability is not None else "-"
        )
        status = "pass" if verdict.passed else (
            "FAIL: " + "; ".join(verdict.failures)
        )
        rows.append((
            str(verdict.index),
            f"{verdict.start:g}s",
            f"{verdict.p99_ms:.1f}ms",
            availability,
            status,
        ))
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        f"SLO {slo}",
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
