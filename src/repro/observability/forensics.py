"""Forensic bundles: everything needed to debug one anomaly, in one file.

When something goes wrong inside the runtime — a worker crashes, a
runtime invariant fails, a windowed SLO breaches — the interesting state
is spread across four places: the flight-recorder ring, the offending
request's span tree, the metrics registry, and the chaos policy's
injection report.  By the time a human looks, most of it has been
overwritten or reset.

A :class:`ForensicReporter` freezes that state at the moment of the
anomaly: :meth:`trigger` assembles a single JSON-serialisable **bundle**
(schema ``repro.forensics/1``) holding the last-N flight-recorder events,
the complete event slice and assembled span tree of the offending
request, a metrics snapshot, and the chaos report — and, when a directory
is configured, writes it atomically to
``forensic-<seq>-<reason>.json``.  Bundles are capped (``max_bundles``)
so a crash loop cannot fill the disk; triggers beyond the cap are counted
but dropped.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Callable, Dict, List, Optional

from repro.observability.context import assemble_traces
from repro.observability.events import FlightRecorder
from repro.observability.exporters import write_atomic

#: Bundle schema identifier — bump on incompatible layout changes.
BUNDLE_SCHEMA = "repro.forensics/1"


class ForensicReporter:
    """Dumps flight-recorder + trace + metrics state on anomaly triggers.

    ``recorder`` supplies the event ring; ``observability`` (optional)
    supplies spans and metrics; ``chaos_report`` is a zero-argument
    callable returning the chaos policy's replay-stable report, resolved
    lazily at trigger time so late injections are included.  With no
    ``directory`` the bundles are kept in memory only (:attr:`bundles`).
    """

    def __init__(
        self,
        recorder: FlightRecorder,
        observability: Optional[Any] = None,
        directory: Optional[str] = None,
        last_events: int = 256,
        max_bundles: int = 16,
        chaos_report: Optional[Callable[[], Dict[str, Any]]] = None,
    ) -> None:
        if last_events < 1:
            raise ValueError(f"last_events must be >= 1, got {last_events}")
        if max_bundles < 1:
            raise ValueError(f"max_bundles must be >= 1, got {max_bundles}")
        self.recorder = recorder
        self.observability = observability
        self.directory = os.fspath(directory) if directory is not None else None
        self.last_events = last_events
        self.max_bundles = max_bundles
        self.chaos_report = chaos_report
        #: Bundles assembled so far (capped at ``max_bundles``).
        self.bundles: List[Dict[str, Any]] = []
        #: Paths of bundles written to ``directory``, in trigger order.
        self.paths: List[str] = []
        #: Total triggers seen, including ones dropped beyond the cap.
        self.triggered_total = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def trigger(
        self,
        reason: str,
        trace_id: Optional[str] = None,
        **extra: Any,
    ) -> Optional[Dict[str, Any]]:
        """Assemble (and persist, if configured) one forensic bundle.

        ``reason`` names the anomaly (``"worker_crash"``,
        ``"invariant_violation"``, ``"slo_breach"``); ``trace_id`` scopes
        the per-request slices; ``extra`` lands under ``"context"``
        verbatim.  Returns the bundle, or ``None`` when the cap is hit.
        """
        with self._lock:
            self.triggered_total += 1
            if len(self.bundles) >= self.max_bundles:
                return None
            seq = self.triggered_total
        bundle = self._assemble(seq, reason, trace_id, extra)
        path: Optional[str] = None
        if self.directory is not None:
            os.makedirs(self.directory, exist_ok=True)
            safe_reason = "".join(
                c if c.isalnum() or c in "-_" else "-" for c in reason
            )
            path = os.path.join(
                self.directory, f"forensic-{seq:03d}-{safe_reason}.json"
            )
            write_atomic(
                path,
                lambda handle: json.dump(
                    bundle, handle, indent=2, sort_keys=True, default=str
                ),
            )
        with self._lock:
            self.bundles.append(bundle)
            if path is not None:
                self.paths.append(path)
        return bundle

    # ------------------------------------------------------------------
    def _assemble(
        self,
        seq: int,
        reason: str,
        trace_id: Optional[str],
        extra: Dict[str, Any],
    ) -> Dict[str, Any]:
        recorder = self.recorder
        clock = getattr(recorder, "clock", None)
        bundle: Dict[str, Any] = {
            "schema": BUNDLE_SCHEMA,
            "seq": seq,
            "reason": reason,
            "trace_id": trace_id,
            "sim": clock.now() if clock is not None else None,
            "events": [e.to_dict() for e in recorder.tail(self.last_events)],
            "events_recorded_total": recorder.recorded_total,
        }
        if trace_id is not None:
            bundle["trace_events"] = [
                e.to_dict() for e in recorder.for_trace(trace_id)
            ]
        obs = self.observability
        if obs is not None:
            tracer = getattr(obs, "tracer", None)
            if tracer is not None and getattr(tracer, "enabled", False):
                # all_spans() snapshots under the tracer's roots lock, so
                # assembling is safe while workers keep finishing spans.
                assemblies = assemble_traces(tracer.all_spans())
                if trace_id is not None:
                    assembly = assemblies.get(trace_id)
                    bundle["spans"] = (
                        assembly.to_records() if assembly is not None else []
                    )
                else:
                    bundle["spans"] = [
                        record
                        for assembly in assemblies.values()
                        for record in assembly.to_records()
                    ]
            metrics = getattr(obs, "metrics", None)
            if metrics is not None and getattr(metrics, "enabled", False):
                bundle["metrics"] = metrics.snapshot()
        if self.chaos_report is not None:
            try:
                bundle["chaos"] = self.chaos_report()
            except Exception as exc:  # report must never mask the anomaly
                bundle["chaos"] = {"error": repr(exc)}
        if extra:
            bundle["context"] = extra
        return bundle

    def __repr__(self) -> str:
        return (
            f"ForensicReporter(bundles={len(self.bundles)}, "
            f"triggered={self.triggered_total}, "
            f"directory={self.directory!r})"
        )
