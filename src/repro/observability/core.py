"""The observability facade the rest of the middleware talks to.

One :class:`Observability` object bundles a tracer and a metrics registry;
every instrumented component (discovery, QASSA, binder, engine, monitor,
adaptation manager) takes one as an optional constructor argument.  The
default is :data:`NULL_OBSERVABILITY`, whose span/counter/histogram calls
are no-ops on shared singletons — the disabled pipeline pays only a
handful of no-op method calls per request (asserted ≤ 5 % by
``tests/test_observability_overhead.py``).

For code paths that build their own components deep inside experiment
sweeps (where threading a parameter through would be invasive), a module
*default* can be installed — usually via the :func:`enabled` context
manager — and is picked up by components constructed while it is active.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.observability.metrics import (
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
)
from repro.observability.spans import (
    Clock,
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
)


@dataclass(frozen=True)
class ObservabilityConfig:
    """The middleware-level observability knob.

    ``enabled`` turns tracing + metrics on for components the middleware
    constructs.  ``trace`` / ``metrics`` allow switching either half off
    individually (a metrics-only deployment skips span bookkeeping).
    """

    enabled: bool = False
    trace: bool = True
    metrics: bool = True


class Observability:
    """A live tracer + metrics registry pair."""

    enabled = True

    def __init__(
        self,
        clock: Optional[Clock] = None,
        trace: bool = True,
        metrics: bool = True,
    ) -> None:
        self.tracer: Any = Tracer(clock) if trace else NULL_TRACER
        self.metrics: Any = MetricsRegistry() if metrics else NULL_METRICS

    # -- tracing -------------------------------------------------------
    def span(self, name: str, **attributes: Any):
        return self.tracer.span(name, **attributes)

    def adopt(self, context: Any):
        """Adopt a :class:`TraceContext` for the calling thread.

        Context manager: spans opened inside carry the context's trace id
        and link under its parent span (see ``Tracer.adopt``).
        """
        return self.tracer.adopt(context)

    @property
    def spans(self):
        """Finished root spans."""
        return self.tracer.spans

    # -- metrics -------------------------------------------------------
    def counter(self, name: str, **labels: Any):
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: Any):
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, buckets=None, **labels: Any):
        return self.metrics.histogram(name, buckets=buckets, **labels)

    # ------------------------------------------------------------------
    def attach_clock(self, clock: Optional[Clock]) -> None:
        """Point span simulated-time capture at an environment's clock."""
        if isinstance(self.tracer, Tracer):
            self.tracer.clock = clock

    def reset(self) -> None:
        self.tracer.reset()
        self.metrics.reset()

    @classmethod
    def from_config(
        cls, config: ObservabilityConfig, clock: Optional[Clock] = None
    ) -> "Observability":
        if not config.enabled:
            return NULL_OBSERVABILITY  # type: ignore[return-value]
        return cls(clock=clock, trace=config.trace, metrics=config.metrics)


class _NullObservability:
    """Disabled observability: every hook is a no-op on a singleton."""

    enabled = False
    tracer: NullTracer = NULL_TRACER
    metrics: NullMetricsRegistry = NULL_METRICS
    spans: tuple = ()

    def span(self, name: str, **attributes: Any):
        return NULL_SPAN

    def adopt(self, context: Any):
        return NULL_TRACER.adopt(context)

    def counter(self, name: str, **labels: Any):
        return NULL_METRICS.counter(name)

    def gauge(self, name: str, **labels: Any):
        return NULL_METRICS.gauge(name)

    def histogram(self, name: str, buckets=None, **labels: Any):
        return NULL_METRICS.histogram(name)

    def attach_clock(self, clock: Optional[Clock]) -> None:
        pass

    def reset(self) -> None:
        pass


#: The shared disabled instance — the default everywhere.
NULL_OBSERVABILITY = _NullObservability()

_default: Any = NULL_OBSERVABILITY


def get_default() -> Any:
    """The ambient observability components fall back to when none is
    passed explicitly (``NULL_OBSERVABILITY`` unless installed)."""
    return _default


def set_default(observability: Optional[Any]) -> Any:
    """Install (or, with ``None``, clear) the ambient default.

    Returns the previous default so callers can restore it.
    """
    global _default
    previous = _default
    _default = observability if observability is not None else NULL_OBSERVABILITY
    return previous


@contextlib.contextmanager
def enabled(
    clock: Optional[Clock] = None,
    trace: bool = True,
    metrics: bool = True,
) -> Iterator[Observability]:
    """Run a block with a fresh ambient :class:`Observability` installed.

    Components constructed inside the block (experiment sweeps, ad-hoc
    selectors) pick it up automatically::

        with observability.enabled() as obs:
            figures.fig_vi5a()
        print(render_span_tree(obs.spans))
    """
    obs = Observability(clock=clock, trace=trace, metrics=metrics)
    previous = set_default(obs)
    try:
        yield obs
    finally:
        set_default(previous)


def resolve(observability: Optional[Any]) -> Any:
    """What instrumented constructors call: explicit wins, else ambient."""
    return observability if observability is not None else _default
