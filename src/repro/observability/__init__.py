"""End-to-end observability for the QASOM pipeline.

The middleware's compose → discover → select → bind → invoke → monitor →
adapt pipeline is instrumented with hierarchical spans (wall-clock *and*
simulated-clock) and a metrics registry (counters, gauges, fixed-bucket
histograms).  See ``docs/OBSERVABILITY.md`` for the span taxonomy, metric
names and exporter formats.

Quick start::

    from repro.observability import Observability

    obs = Observability(clock=environment.clock)
    middleware = QASOM.for_environment(env, props, observability=obs)
    middleware.run(request)
    print(render_span_tree(obs.spans))

Observability is **off by default**: components fall back to
:data:`NULL_OBSERVABILITY`, whose hooks are no-ops on shared singletons.
"""

from repro.observability.context import (
    TraceAssembly,
    TraceContext,
    assemble_traces,
    trace_spans,
)
from repro.observability.core import (
    NULL_OBSERVABILITY,
    Observability,
    ObservabilityConfig,
    enabled,
    get_default,
    resolve,
    set_default,
)
from repro.observability.events import (
    FlightRecorder,
    NULL_RECORDER,
    RuntimeEvent,
)
from repro.observability.exporters import (
    export_jsonl,
    read_jsonl,
    render_breakdown,
    render_span_tree,
    stage_breakdown,
    write_atomic,
    write_jsonl,
)
from repro.observability.forensics import BUNDLE_SCHEMA, ForensicReporter
from repro.observability.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
)
from repro.observability.spans import NULL_SPAN, NULL_TRACER, Span, Tracer
from repro.observability.windows import (
    PIPELINE_STAGES,
    Slo,
    SloVerdict,
    StageWindows,
    StatsWindow,
    WindowStats,
    WindowedHistogram,
    render_slo_table,
    render_window_table,
    sparkline,
    window_records,
    write_window_jsonl,
)

__all__ = [
    "BUNDLE_SCHEMA",
    "NULL_METRICS",
    "NULL_OBSERVABILITY",
    "NULL_RECORDER",
    "NULL_SPAN",
    "NULL_TRACER",
    "Counter",
    "DEFAULT_BUCKETS",
    "FlightRecorder",
    "ForensicReporter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "ObservabilityConfig",
    "PIPELINE_STAGES",
    "RuntimeEvent",
    "Slo",
    "SloVerdict",
    "Span",
    "StageWindows",
    "StatsWindow",
    "TraceAssembly",
    "TraceContext",
    "Tracer",
    "WindowStats",
    "WindowedHistogram",
    "assemble_traces",
    "enabled",
    "export_jsonl",
    "get_default",
    "read_jsonl",
    "render_breakdown",
    "render_slo_table",
    "render_span_tree",
    "render_window_table",
    "resolve",
    "set_default",
    "sparkline",
    "stage_breakdown",
    "trace_spans",
    "window_records",
    "write_atomic",
    "write_jsonl",
    "write_window_jsonl",
]
