"""Exporters: console span tree, JSONL dump, per-stage breakdowns.

Three ways out of the in-process tracer/registry:

* :func:`render_span_tree` — a human-readable tree with wall/simulated
  durations and the most useful attributes (what ``--trace`` prints);
* :func:`export_jsonl` / :func:`write_jsonl` — one JSON object per line
  (``{"type": "span"|"metric", ...}``), the machine-readable format
  ``--metrics-out`` writes and tests round-trip;
* :func:`stage_breakdown` / :func:`render_breakdown` — aggregate spans by
  name into per-stage timing tables (the experiment harness's answer to
  "where did the time go?").

The *no-op* exporter is simply not calling any of these — the disabled
middleware never materialises spans or metrics in the first place.
"""

from __future__ import annotations

import json
import os
import statistics
import tempfile
from typing import Any, Callable, Dict, IO, Iterable, List, Mapping, Optional, Sequence

from repro.observability.spans import Span


def write_atomic(path: Any, render: Callable[[IO[str]], None]) -> None:
    """Write a file atomically: temp file in the target dir + ``os.replace``.

    A crash mid-export (a real scenario under chaos injection) leaves
    either the previous file or the complete new one — never a torn
    half-written dump.  The temp file lives in the destination directory
    so the final rename stays on one filesystem.
    """
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            render(handle)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise

#: Span attributes surfaced inline in the console tree, in display order.
_TREE_ATTRIBUTES = (
    "task", "activity", "capability", "service_id", "attempt", "succeeded",
    "pool_size", "candidates", "levels", "combinations_explored",
    "utility", "feasible", "kind", "action", "trigger_kind", "policy",
    "error",
)


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1000:.3f}ms"


def _format_attributes(span: Span) -> str:
    shown = []
    for key in _TREE_ATTRIBUTES:
        if key in span.attributes:
            value = span.attributes[key]
            if isinstance(value, float):
                value = f"{value:.4g}"
            shown.append(f"{key}={value}")
    for key, value in span.attributes.items():
        if key not in _TREE_ATTRIBUTES:
            if isinstance(value, float):
                value = f"{value:.4g}"
            shown.append(f"{key}={value}")
    return f" [{', '.join(shown)}]" if shown else ""


def render_span_tree(spans: Iterable[Span]) -> str:
    """An indented tree of spans with durations, ready to print."""
    lines: List[str] = []

    def _render(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        connector = "" if is_root else ("└─ " if is_last else "├─ ")
        sim = span.sim_duration
        sim_part = f" (sim {_format_duration(sim)})" if sim else ""
        lines.append(
            f"{prefix}{connector}{span.name}"
            f"  {_format_duration(span.duration)}{sim_part}"
            f"{_format_attributes(span)}"
        )
        child_prefix = prefix if is_root else (
            prefix + ("   " if is_last else "│  ")
        )
        for i, child in enumerate(span.children):
            _render(child, child_prefix, i == len(span.children) - 1, False)

    roots = list(spans)
    for root in roots:
        _render(root, "", True, True)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def export_jsonl(observability: Any) -> List[Dict[str, Any]]:
    """All spans and metrics as JSON-serialisable records."""
    records: List[Dict[str, Any]] = []
    for root in observability.tracer.all_spans() if hasattr(
        observability.tracer, "all_spans"
    ) else ():
        record = root.to_dict()
        record["type"] = "span"
        records.append(record)
    for metric in observability.metrics.snapshot():
        metric = dict(metric)
        metric["type"] = f"metric.{metric.pop('type')}"
        records.append(metric)
    return records


def write_jsonl(observability: Any, stream_or_path: Any) -> int:
    """Write the JSONL dump; returns the number of records written.

    Paths are written atomically (see :func:`write_atomic`): readers — and
    post-crash forensics — never observe a torn file.
    """
    records = export_jsonl(observability)
    if hasattr(stream_or_path, "write"):
        _write_records(records, stream_or_path)
    else:
        write_atomic(
            stream_or_path, lambda handle: _write_records(records, handle)
        )
    return len(records)


def _write_records(records: Sequence[Mapping[str, Any]], handle: IO[str]) -> None:
    for record in records:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def read_jsonl(stream_or_path: Any) -> List[Dict[str, Any]]:
    """Parse a JSONL dump back into records (the round-trip helper)."""
    if hasattr(stream_or_path, "read"):
        text = stream_or_path.read()
    else:
        with open(stream_or_path, "r", encoding="utf-8") as handle:
            text = handle.read()
    return [json.loads(line) for line in text.splitlines() if line.strip()]


# ----------------------------------------------------------------------
# per-stage breakdowns
# ----------------------------------------------------------------------
def stage_breakdown(spans: Iterable[Span]) -> Dict[str, Dict[str, float]]:
    """Aggregate all spans (roots + descendants) by span name.

    Returns ``name -> {count, total_s, median_s, min_s, max_s}``, sorted
    by descending total time.
    """
    durations: Dict[str, List[float]] = {}
    for root in spans:
        for span in root.walk():
            durations.setdefault(span.name, []).append(span.duration)
    breakdown = {
        name: {
            "count": float(len(values)),
            "total_s": sum(values),
            "median_s": statistics.median(values),
            "min_s": min(values),
            "max_s": max(values),
        }
        for name, values in durations.items()
    }
    return dict(
        sorted(breakdown.items(), key=lambda kv: -kv[1]["total_s"])
    )


def render_breakdown(breakdown: Mapping[str, Mapping[str, float]]) -> str:
    """The per-stage table ``experiment --trace`` prints."""
    headers = ("stage", "count", "total", "median", "min", "max")
    rows = [
        (
            name,
            f"{int(stats['count'])}",
            _format_duration(stats["total_s"]),
            _format_duration(stats["median_s"]),
            _format_duration(stats["min_s"]),
            _format_duration(stats["max_s"]),
        )
        for name, stats in breakdown.items()
    ]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
