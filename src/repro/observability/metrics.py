"""Counters, gauges and histograms for the middleware — stdlib only.

The registry follows the Prometheus naming idiom (snake-case metric names,
optional label sets) but keeps everything in-process: experiments read the
registry directly, exporters serialise a snapshot.  Histograms use fixed
upper-bound buckets, so percentile *summaries* are estimates (the upper
bound of the bucket the quantile lands in) — cheap, bounded memory, and
accurate enough for the per-stage latency breakdowns the Ch. VI figures
need.

Instruments are **thread-safe**: runtime worker threads share one
registry, and the read-modify-write sequences in ``Counter.inc``,
``Gauge.add`` and ``Histogram.observe`` would silently drop observations
under concurrent access (``x += 1`` is not atomic — the GIL can switch
threads between the read and the store).  Each instrument carries its own
small lock; the disabled path (:data:`NULL_METRIC`) stays lock- and
allocation-free.

Histograms optionally record **exemplars**: the worst ``(value,
trace_id)`` seen per bucket, so a p99 summary can name the exact request
that produced the tail (see ``observe(..., exemplar=...)``).
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Default histogram buckets, in seconds — spans from sub-millisecond
#: selection steps to multi-second simulated executions.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "counter",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """A value that can go up and down (pool sizes, utilities, clock skew)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += delta

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "gauge",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram:
    """Fixed-bucket histogram with percentile summaries.

    ``buckets`` are inclusive upper bounds; one implicit overflow bucket
    catches everything above the last bound.  Bucket lookup is a binary
    search (``bisect``), so ``observe`` is O(log buckets).  ``quantile(q)``
    interpolates linearly *within* the bucket containing the q-th
    observation — see its docstring for the estimator.
    """

    __slots__ = (
        "name", "labels", "buckets", "counts", "count", "total",
        "minimum", "maximum", "exemplars", "_lock",
    )

    def __init__(
        self,
        name: str,
        labels: _LabelKey = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        bounds = tuple(sorted(buckets)) if buckets else DEFAULT_BUCKETS
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        #: Per-bucket worst observation, bucket index -> (value, trace_id);
        #: populated lazily, only for ``observe(..., exemplar=...)`` calls.
        self.exemplars: Dict[int, Tuple[float, str]] = {}
        self._lock = threading.Lock()

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        """Record one observation.

        ``exemplar`` is an opaque identity (the request's trace id): when
        given, the bucket remembers the worst value it has seen with that
        identity, so percentile summaries can point at a concrete request.
        """
        # bisect_left finds the first bound >= value (bounds are inclusive
        # upper bounds); values above the last bound land in the implicit
        # overflow bucket at index len(buckets).
        index = bisect_left(self.buckets, value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value
            self.counts[index] += 1
            if exemplar is not None:
                worst = self.exemplars.get(index)
                if worst is None or value > worst[0]:
                    self.exemplars[index] = (value, exemplar)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0 < q <= 1) from the bucket counts.

        Estimator: find the bucket containing the q-th observation, then
        interpolate linearly within it, assuming observations are spread
        uniformly across the bucket's span.  The bucket's lower edge is
        the previous bound (or the observed minimum for the first bucket);
        its upper edge is the bound itself (or the observed maximum for
        the overflow bucket).  The interpolated estimate is finally
        clamped into ``[minimum, maximum]`` — the conservative guarantee
        that an estimate never leaves the observed range, which matters
        for sparse histograms whose single occupied bucket is much wider
        than the data.
        """
        if not 0 < q <= 1:
            raise ValueError("quantile must be in (0, 1]")
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float:
        if self.count == 0:
            return 0.0
        rank = math.ceil(q * self.count)
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.minimum if i == 0 else self.buckets[i - 1]
                upper = (
                    self.maximum if i == len(self.buckets)
                    else self.buckets[i]
                )
                fraction = (rank - cumulative) / bucket_count
                estimate = lower + fraction * (upper - lower)
                return max(self.minimum, min(estimate, self.maximum))
            cumulative += bucket_count
        return self.maximum

    def exemplar(self) -> Optional[Tuple[float, str]]:
        """The overall worst recorded ``(value, trace_id)``, if any."""
        with self._lock:
            if not self.exemplars:
                return None
            return max(self.exemplars.values(), key=lambda e: e[0])

    def summary(self) -> Dict[str, float]:
        """Count/sum/min/max/mean plus estimated percentiles.

        Computed under one lock acquisition so the fields are mutually
        consistent even while worker threads keep observing.
        """
        with self._lock:
            return {
                "count": float(self.count),
                "sum": self.total,
                "min": self.minimum if self.count else 0.0,
                "max": self.maximum if self.count else 0.0,
                "mean": self.total / self.count if self.count else 0.0,
                "p50": self._quantile_locked(0.50),
                "p90": self._quantile_locked(0.90),
                "p95": self._quantile_locked(0.95),
                "p99": self._quantile_locked(0.99),
                "p999": self._quantile_locked(0.999),
            }

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram's observations into this one (in place).

        Both histograms must share the same bucket bounds — the windowed
        telemetry layer relies on this to collapse per-window histograms
        into one cumulative distribution without re-observing values.
        """
        if other.buckets != self.buckets:
            raise ValueError(
                "cannot merge histograms with different bucket bounds"
            )
        # Snapshot ``other`` under its own lock, then apply under ours —
        # never holding both (two opposite-direction merges would deadlock).
        with other._lock:
            counts = list(other.counts)
            count, total = other.count, other.total
            minimum, maximum = other.minimum, other.maximum
            exemplars = dict(other.exemplars)
        with self._lock:
            for i, bucket_count in enumerate(counts):
                self.counts[i] += bucket_count
            self.count += count
            self.total += total
            if count:
                self.minimum = min(self.minimum, minimum)
                self.maximum = max(self.maximum, maximum)
            for index, candidate in exemplars.items():
                worst = self.exemplars.get(index)
                if worst is None or candidate[0] > worst[0]:
                    self.exemplars[index] = candidate
        return self

    def to_dict(self) -> Dict[str, Any]:
        record = {
            "type": "histogram",
            "name": self.name,
            "labels": dict(self.labels),
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "summary": self.summary(),
        }
        with self._lock:
            if self.exemplars:
                record["exemplars"] = {
                    str(index): {"value": value, "trace_id": trace_id}
                    for index, (value, trace_id)
                    in sorted(self.exemplars.items())
                }
        return record


class MetricsRegistry:
    """Get-or-create store for all of a middleware instance's metrics.

    Get-or-create is race-free under concurrent access (``setdefault`` on
    the instrument maps is atomic in CPython), so runtime worker threads
    sharing one registry always converge on the same instrument object.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, _LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, _LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, _LabelKey], Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters.setdefault(key, Counter(name, key[1]))
        return counter

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges.setdefault(key, Gauge(name, key[1]))
        return gauge

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> Histogram:
        key = (name, _label_key(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms.setdefault(
                key, Histogram(name, key[1], buckets)
            )
        return histogram

    # ------------------------------------------------------------------
    def snapshot(self) -> List[Dict[str, Any]]:
        """All metrics as JSON-serialisable dicts, sorted by (name, labels)."""
        records: List[Dict[str, Any]] = []
        for store in (self._counters, self._gauges, self._histograms):
            records.extend(metric.to_dict() for metric in store.values())
        records.sort(key=lambda r: (r["name"], sorted(r["labels"].items())))
        return records

    def value(self, name: str, **labels: Any) -> Optional[float]:
        """Convenience lookup: a counter/gauge's value — or, for
        histograms, the observation count — if the instrument exists."""
        key = (name, _label_key(labels))
        metric = self._counters.get(key) or self._gauges.get(key)
        if metric is not None:
            return metric.value
        histogram = self._histograms.get(key)
        return float(histogram.count) if histogram is not None else None

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class _NullMetric:
    """One shared sink for every disabled counter/gauge/histogram."""

    __slots__ = ()
    value = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        pass


NULL_METRIC = _NullMetric()


class NullMetricsRegistry:
    """Registry with metrics compiled out."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullMetric:
        return NULL_METRIC

    def gauge(self, name: str, **labels: Any) -> _NullMetric:
        return NULL_METRIC

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> _NullMetric:
        return NULL_METRIC

    def snapshot(self) -> List[Dict[str, Any]]:
        return []

    def value(self, name: str, **labels: Any) -> Optional[float]:
        return None

    def reset(self) -> None:
        pass


NULL_METRICS = NullMetricsRegistry()
