"""Counters, gauges and histograms for the middleware — stdlib only.

The registry follows the Prometheus naming idiom (snake-case metric names,
optional label sets) but keeps everything in-process: experiments read the
registry directly, exporters serialise a snapshot.  Histograms use fixed
upper-bound buckets, so percentile *summaries* are estimates (the upper
bound of the bucket the quantile lands in) — cheap, bounded memory, and
accurate enough for the per-stage latency breakdowns the Ch. VI figures
need.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Default histogram buckets, in seconds — spans from sub-millisecond
#: selection steps to multi-second simulated executions.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "counter",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """A value that can go up and down (pool sizes, utilities, clock skew)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "gauge",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram:
    """Fixed-bucket histogram with percentile summaries.

    ``buckets`` are inclusive upper bounds; one implicit overflow bucket
    catches everything above the last bound.  Bucket lookup is a binary
    search (``bisect``), so ``observe`` is O(log buckets).  ``quantile(q)``
    interpolates linearly *within* the bucket containing the q-th
    observation — see its docstring for the estimator.
    """

    __slots__ = (
        "name", "labels", "buckets", "counts", "count", "total",
        "minimum", "maximum",
    )

    def __init__(
        self,
        name: str,
        labels: _LabelKey = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        bounds = tuple(sorted(buckets)) if buckets else DEFAULT_BUCKETS
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        # bisect_left finds the first bound >= value (bounds are inclusive
        # upper bounds); values above the last bound land in the implicit
        # overflow bucket at index len(buckets).
        self.counts[bisect_left(self.buckets, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0 < q <= 1) from the bucket counts.

        Estimator: find the bucket containing the q-th observation, then
        interpolate linearly within it, assuming observations are spread
        uniformly across the bucket's span.  The bucket's lower edge is
        the previous bound (or the observed minimum for the first bucket);
        its upper edge is the bound itself (or the observed maximum for
        the overflow bucket).  The interpolated estimate is finally
        clamped into ``[minimum, maximum]`` — the conservative guarantee
        that an estimate never leaves the observed range, which matters
        for sparse histograms whose single occupied bucket is much wider
        than the data.
        """
        if not 0 < q <= 1:
            raise ValueError("quantile must be in (0, 1]")
        if self.count == 0:
            return 0.0
        rank = math.ceil(q * self.count)
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.minimum if i == 0 else self.buckets[i - 1]
                upper = (
                    self.maximum if i == len(self.buckets)
                    else self.buckets[i]
                )
                fraction = (rank - cumulative) / bucket_count
                estimate = lower + fraction * (upper - lower)
                return max(self.minimum, min(estimate, self.maximum))
            cumulative += bucket_count
        return self.maximum

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
        }

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram's observations into this one (in place).

        Both histograms must share the same bucket bounds — the windowed
        telemetry layer relies on this to collapse per-window histograms
        into one cumulative distribution without re-observing values.
        """
        if other.buckets != self.buckets:
            raise ValueError(
                "cannot merge histograms with different bucket bounds"
            )
        for i, bucket_count in enumerate(other.counts):
            self.counts[i] += bucket_count
        self.count += other.count
        self.total += other.total
        if other.count:
            self.minimum = min(self.minimum, other.minimum)
            self.maximum = max(self.maximum, other.maximum)
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "name": self.name,
            "labels": dict(self.labels),
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "summary": self.summary(),
        }


class MetricsRegistry:
    """Get-or-create store for all of a middleware instance's metrics.

    Get-or-create is race-free under concurrent access (``setdefault`` on
    the instrument maps is atomic in CPython), so runtime worker threads
    sharing one registry always converge on the same instrument object.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, _LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, _LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, _LabelKey], Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters.setdefault(key, Counter(name, key[1]))
        return counter

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges.setdefault(key, Gauge(name, key[1]))
        return gauge

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> Histogram:
        key = (name, _label_key(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms.setdefault(
                key, Histogram(name, key[1], buckets)
            )
        return histogram

    # ------------------------------------------------------------------
    def snapshot(self) -> List[Dict[str, Any]]:
        """All metrics as JSON-serialisable dicts, sorted by (name, labels)."""
        records: List[Dict[str, Any]] = []
        for store in (self._counters, self._gauges, self._histograms):
            records.extend(metric.to_dict() for metric in store.values())
        records.sort(key=lambda r: (r["name"], sorted(r["labels"].items())))
        return records

    def value(self, name: str, **labels: Any) -> Optional[float]:
        """Convenience lookup: a counter/gauge's value, if it exists."""
        key = (name, _label_key(labels))
        metric = self._counters.get(key) or self._gauges.get(key)
        return metric.value if metric is not None else None

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class _NullMetric:
    """One shared sink for every disabled counter/gauge/histogram."""

    __slots__ = ()
    value = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_METRIC = _NullMetric()


class NullMetricsRegistry:
    """Registry with metrics compiled out."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullMetric:
        return NULL_METRIC

    def gauge(self, name: str, **labels: Any) -> _NullMetric:
        return NULL_METRIC

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> _NullMetric:
        return NULL_METRIC

    def snapshot(self) -> List[Dict[str, Any]]:
        return []

    def value(self, name: str, **labels: Any) -> Optional[float]:
        return None

    def reset(self) -> None:
        pass


NULL_METRICS = NullMetricsRegistry()
