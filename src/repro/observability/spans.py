"""Hierarchical tracing for the QASOM pipeline.

A :class:`Span` is one timed stage of the compose → discover → select →
bind → invoke → adapt pipeline.  Spans carry *two* time axes:

* **wall clock** (``time.perf_counter``) — what the paper's Ch. VI timing
  figures measure (selection time, adaptation latency);
* **simulated clock** — the environment's :class:`SimulatedClock`, so a
  trace also shows where *simulated* execution time went (invocation
  response times, parallel-branch joins).

The :class:`Tracer` maintains the parent/child structure with an explicit
stack: spans opened while another span is active become its children, so
instrumented components nest correctly without passing span objects
around.  Everything here is synchronous and allocation-light; the
*disabled* path (see :data:`NULL_SPAN` and :class:`NullTracer`) does no
allocation at all — instrumented call sites pay one attribute lookup and a
no-op context-manager enter/exit.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Protocol


class Clock(Protocol):
    """Anything with a ``now() -> float`` (the simulated clock qualifies)."""

    def now(self) -> float: ...


class Span:
    """One timed, attributed stage of a pipeline run (context manager)."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "trace_id",
        "started_wall",
        "ended_wall",
        "started_sim",
        "ended_sim",
        "attributes",
        "children",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: Optional[str],
        tracer: "Tracer",
        attributes: Optional[Dict[str, Any]] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        #: The causal request identity this span belongs to (None for
        #: spans opened outside any adopted TraceContext).
        self.trace_id = trace_id
        self.started_wall: float = 0.0
        self.ended_wall: Optional[float] = None
        self.started_sim: Optional[float] = None
        self.ended_sim: Optional[float] = None
        self.attributes: Dict[str, Any] = attributes if attributes else {}
        self.children: List["Span"] = []
        self._tracer = tracer

    # ------------------------------------------------------------------
    def set(self, **attributes: Any) -> "Span":
        """Attach attributes (candidate-pool sizes, utilities, triggers…)."""
        self.attributes.update(attributes)
        return self

    @property
    def duration(self) -> float:
        """Wall-clock seconds (0.0 while the span is still open)."""
        if self.ended_wall is None:
            return 0.0
        return self.ended_wall - self.started_wall

    @property
    def sim_duration(self) -> Optional[float]:
        """Simulated seconds, when a simulated clock was attached."""
        if self.started_sim is None or self.ended_sim is None:
            return None
        return self.ended_sim - self.started_sim

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.attributes.setdefault("error", repr(exc))
        self._tracer._close(self)
        return False

    # ------------------------------------------------------------------
    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """All descendant spans (including self) with the given name."""
        return [span for span in self.walk() if span.name == name]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (children referenced by parent_id)."""
        record: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "started_wall": self.started_wall,
            "duration_s": self.duration,
        }
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        if self.started_sim is not None:
            record["started_sim"] = self.started_sim
        if self.ended_sim is not None:
            record["ended_sim"] = self.ended_sim
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        return record

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"duration={self.duration:.6f}s, "
            f"children={len(self.children)})"
        )


class _NullSpan:
    """The shared do-nothing span the disabled path hands out."""

    __slots__ = ()

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    @property
    def duration(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "NULL_SPAN"


#: Singleton returned by every disabled tracer — no allocation per span.
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects hierarchical spans for one middleware instance.

    ``clock`` is the environment's simulated clock; when present every
    span also records simulated start/end timestamps.  Finished *root*
    spans accumulate in :attr:`spans` (children hang off their parents).

    The open-span stack is **thread-local**: spans opened by a runtime
    worker thread nest under that thread's own ancestry and surface as
    separate roots, so concurrent requests produce coherent per-request
    trees instead of corrupting one shared stack.  Span ids are drawn from
    an atomic counter and stay unique across threads.

    Cross-thread causality is explicit: a thread that :meth:`adopt`\\ s a
    :class:`~repro.observability.context.TraceContext` stamps the
    context's ``trace_id`` on every span it opens while adopted, and links
    its local roots to the context's ``parent_span_id`` — so one request's
    spans stay one causal tree no matter how many threads touch it.

    The finished-roots list is guarded by a lock: worker threads finish
    root spans concurrently with :meth:`reset` / :meth:`all_spans` calls
    from the submitting thread, and an unguarded read-swap would silently
    drop a span finishing in between.
    """

    enabled = True

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock
        self.spans: List[Span] = []
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._roots_lock = threading.Lock()

    @property
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def _context(self) -> Optional[Any]:
        return getattr(self._local, "context", None)

    # ------------------------------------------------------------------
    def adopt(self, context: Any) -> "_Adoption":
        """Adopt a trace context for this thread (context manager).

        While adopted, spans opened with an empty local stack become the
        context's causal children: they carry its ``trace_id`` and link to
        its ``parent_span_id`` (nested spans inherit the trace id from
        their in-thread parent as usual).  Adoptions nest; ``None``
        restores untraced behaviour.
        """
        return _Adoption(self, context)

    def current_trace_id(self) -> Optional[str]:
        """The adopted context's trace id on this thread, if any."""
        context = self._context
        return context.trace_id if context is not None else None

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> Span:
        """Create (but not yet start) a span; use as a context manager."""
        stack = self._stack
        parent = stack[-1] if stack else None
        context = self._context if parent is None else None
        if parent is not None:
            parent_id: Optional[str] = parent.span_id
            trace_id: Optional[str] = parent.trace_id
        elif context is not None:
            parent_id = context.parent_span_id
            trace_id = context.trace_id
        else:
            parent_id = None
            trace_id = None
        return Span(
            name,
            span_id=f"s{next(self._ids):04d}",
            parent_id=parent_id,
            tracer=self,
            attributes=attributes or None,
            trace_id=trace_id,
        )

    def _open(self, span: Span) -> None:
        # Re-resolve the parent at enter time: a span object may be
        # created and entered later (or re-parented by sibling order).
        if self._stack:
            parent = self._stack[-1]
            span.parent_id = parent.span_id
            span.trace_id = parent.trace_id
        else:
            context = self._context
            if context is not None:
                span.parent_id = context.parent_span_id
                span.trace_id = context.trace_id
        self._stack.append(span)
        span.started_wall = time.perf_counter()
        if self.clock is not None:
            span.started_sim = self.clock.now()

    def _close(self, span: Span) -> None:
        span.ended_wall = time.perf_counter()
        if self.clock is not None:
            span.ended_sim = self.clock.now()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # tolerate out-of-order exits
            self._stack.remove(span)
        parent = self._stack[-1] if self._stack else None
        if parent is not None and parent.span_id == span.parent_id:
            parent.children.append(span)
        else:
            # No enclosing span on this thread: the span is a local root.
            # (Its parent_id may still point at a span on another thread —
            # cross-thread assembly links it back up by id.)
            with self._roots_lock:
                self.spans.append(span)

    # ------------------------------------------------------------------
    def reset(self) -> List[Span]:
        """Atomically drop (and return) all finished root spans.

        The swap happens under the roots lock, so a worker finishing a
        root span concurrently either lands in the returned batch or in
        the fresh list — never in a discarded copy.  The per-thread stacks
        of *open* spans are kept.
        """
        with self._roots_lock:
            dropped, self.spans = self.spans, []
        return dropped

    def all_spans(self) -> List[Span]:
        """Every finished span, depth-first across all roots.

        Snapshot-safe: the roots list is copied under the lock, so workers
        finishing spans mid-iteration can never corrupt the walk.
        """
        with self._roots_lock:
            roots = list(self.spans)
        collected: List[Span] = []
        for root in roots:
            collected.extend(root.walk())
        return collected


class _Adoption:
    """Reusable enter/exit guard installing a trace context on a thread."""

    __slots__ = ("_tracer", "_context", "_previous")

    def __init__(self, tracer: Tracer, context: Any) -> None:
        self._tracer = tracer
        self._context = context
        self._previous: Any = None

    def __enter__(self) -> Any:
        local = self._tracer._local
        self._previous = getattr(local, "context", None)
        local.context = self._context
        return self._context

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._local.context = self._previous
        return False


class _NullAdoption:
    """No-op adoption guard shared by the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_ADOPTION = _NullAdoption()


class NullTracer:
    """Tracer with tracing compiled out — hands back :data:`NULL_SPAN`."""

    enabled = False
    clock = None

    #: Shared empty tuple so callers can iterate without branching.
    spans: tuple = ()

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return NULL_SPAN

    def adopt(self, context: Any) -> _NullAdoption:
        """Adopting a context is a no-op when tracing is disabled."""
        return _NULL_ADOPTION

    def current_trace_id(self) -> None:
        """No context is ever adopted on the disabled path."""
        return None

    def reset(self) -> tuple:
        return ()

    def all_spans(self) -> tuple:
        return ()


#: Singleton disabled tracer.
NULL_TRACER = NullTracer()
