"""Explicit, serialisable trace context for causal request forensics.

Since the runtime's worker pool (PR 5), one user request is touched by
several threads: the submitter admits it, a worker composes it (possibly a
*different* worker after a crash-requeue), and the ordered commit stage
executes it.  The tracer's thread-local span stacks keep each thread's
spans internally coherent, but the request's spans end up as disconnected
roots — per-thread fragments that cannot answer "what happened to request
X?".

A :class:`TraceContext` makes the causal identity explicit:

* it is **minted once per submission** (``trace_id`` from a process-wide
  monotonic counter) and carried on the
  :class:`~repro.runtime.handle.RunHandle`;
* every execution stage **adopts** it
  (:meth:`~repro.observability.spans.Tracer.adopt`), so spans opened on
  any thread carry the same ``trace_id`` and link to their cross-thread
  parent via ``parent_span_id``;
* it is **serialisable** (:meth:`to_dict` / :meth:`to_header`), so the
  same linkage survives a process boundary — the contract the ROADMAP's
  multiprocess selection backend needs.

:func:`assemble_traces` is the read side: it regroups a tracer's
per-thread root spans into one causally linked tree per ``trace_id``
(used by the forensic bundles and the cross-thread assembly tests).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro.observability.spans import Span

#: Process-wide monotonic trace counter.  ``next()`` on an
#: ``itertools.count`` is atomic under the GIL, so contexts minted from
#: any thread get unique, never-reused trace ids.
_TRACE_SEQ = itertools.count(1)


@dataclass(frozen=True)
class TraceContext:
    """The serialisable causal identity of one submitted request.

    ``trace_id`` names the request's whole span tree; ``parent_span_id``
    names the span new work should link under (``None`` for the first
    execution attempt — its root span *is* the tree's root).  Contexts are
    immutable: crossing a causal boundary derives a :meth:`child` context
    instead of mutating this one.
    """

    trace_id: str
    parent_span_id: Optional[str] = None

    @classmethod
    def mint(cls) -> "TraceContext":
        """A fresh root context with a unique, monotonic trace id."""
        return cls(trace_id=f"t{next(_TRACE_SEQ):06d}")

    def child(self, parent_span_id: str) -> "TraceContext":
        """The context for work causally under span ``parent_span_id``.

        The runtime uses this after a request's first ``runtime.request``
        span opens: a crash-requeued retry adopts the child context, so
        its spans nest under the first attempt's root instead of starting
        a second root — one tree per request, even across crashes.
        """
        return TraceContext(self.trace_id, parent_span_id)

    # -- serialisation (the future process-boundary format) -------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "trace_id": self.trace_id,
            "parent_span_id": self.parent_span_id,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "TraceContext":
        """Rebuild a context from :meth:`to_dict` output."""
        return cls(
            trace_id=str(record["trace_id"]),
            parent_span_id=record.get("parent_span_id"),
        )

    def to_header(self) -> str:
        """One-line wire form (``trace_id`` or ``trace_id:parent``)."""
        if self.parent_span_id is None:
            return self.trace_id
        return f"{self.trace_id}:{self.parent_span_id}"

    @classmethod
    def from_header(cls, header: str) -> "TraceContext":
        """Parse :meth:`to_header` output back into a context."""
        trace_id, _, parent = header.partition(":")
        if not trace_id:
            raise ValueError(f"empty trace header: {header!r}")
        return cls(trace_id=trace_id, parent_span_id=parent or None)

    def __str__(self) -> str:
        return self.to_header()


@dataclass
class TraceAssembly:
    """One request's causally assembled span tree.

    ``spans`` is every span carrying the trace id (any thread, insertion
    order); ``fragments`` are the thread-local roots — spans whose parent
    is either ``None`` or another fragment's descendant reached across a
    thread boundary.  A well-formed trace has exactly one :attr:`root`:
    the fragment with no parent inside the trace.
    """

    trace_id: str
    spans: List[Span]
    fragments: List[Span]

    @property
    def roots(self) -> List[Span]:
        """Fragments whose parent span is not part of this trace."""
        ids = {span.span_id for span in self.spans}
        return [
            span for span in self.fragments
            if span.parent_id is None or span.parent_id not in ids
        ]

    @property
    def root(self) -> Optional[Span]:
        """The single causal root, when the trace is well formed."""
        roots = self.roots
        return roots[0] if len(roots) == 1 else None

    def children_of(self, span_id: str) -> List[Span]:
        """Causal children of one span — in-thread *and* cross-thread."""
        direct = []
        for span in self.spans:
            if span.parent_id == span_id:
                direct.append(span)
        return direct

    def to_records(self) -> List[Dict[str, Any]]:
        """JSON-serialisable span records (linkage via ids, as in JSONL)."""
        return [span.to_dict() for span in self.spans]


def assemble_traces(
    roots: Iterable[Span],
) -> Dict[str, TraceAssembly]:
    """Group finished spans into one :class:`TraceAssembly` per trace id.

    ``roots`` is a tracer's finished-roots list (e.g. ``obs.spans`` or the
    output of :meth:`~repro.observability.spans.Tracer.all_spans` — both
    shapes work: descendants are walked either way and deduplicated).
    Spans without a ``trace_id`` (untraced background work) are skipped.
    """
    assemblies: Dict[str, TraceAssembly] = {}
    seen: set = set()
    for root in roots:
        for span in root.walk():
            if id(span) in seen:
                continue
            seen.add(id(span))
            trace_id = span.trace_id
            if trace_id is None:
                continue
            assembly = assemblies.get(trace_id)
            if assembly is None:
                assembly = assemblies[trace_id] = TraceAssembly(
                    trace_id, [], []
                )
            assembly.spans.append(span)
            if span is root or span.parent_id is None:
                assembly.fragments.append(span)
            else:
                # A child span inside a walked tree: it is a fragment only
                # if its parent lives on another thread (i.e. it was
                # closed as a local root).  Walking roots, that cannot
                # happen — children are reached through their parents.
                pass
    return assemblies


def trace_spans(roots: Iterable[Span], trace_id: str) -> List[Span]:
    """Every finished span of one trace, in insertion order."""
    assembly = assemble_traces(roots).get(trace_id)
    return list(assembly.spans) if assembly is not None else []
