"""Composition execution substrate (S11).

The paper's prototype executes compositions on a BPEL engine over Web
Services; here the equivalent is an in-process engine over the environment
simulator:

* :mod:`repro.execution.clock` — a simulated clock (deterministic time);
* :mod:`repro.execution.binding` — *dynamic binding* (§I.5): the concrete
  service for an activity is chosen just before invocation, from the ranked
  services QASSA kept, using run-time QoS estimates;
* :mod:`repro.execution.engine` — pattern-tree interpretation with QoS
  observation and failure reporting into the monitor;
* :mod:`repro.execution.bpel` — the abstract-BPEL XML dialect for user
  tasks (parse + serialise), feeding the Fig. VI.13 transformation.
"""

from repro.execution.binding import DynamicBinder
from repro.execution.bpel import parse_bpel, to_bpel
from repro.execution.clock import SimulatedClock
from repro.execution.engine import ExecutionEngine, ExecutionReport, Invoker

__all__ = [
    "DynamicBinder",
    "ExecutionEngine",
    "ExecutionReport",
    "Invoker",
    "SimulatedClock",
    "parse_bpel",
    "to_bpel",
]
