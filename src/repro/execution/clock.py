"""A simulated clock.

All run-time machinery (engine, monitor, environment fluctuation processes)
shares one clock so experiments are deterministic and can compress hours of
simulated execution into milliseconds of wall time.
"""

from __future__ import annotations

from repro.errors import ExecutionError


class SimulatedClock:
    """Monotonic simulated time in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; negative advances are rejected."""
        if seconds < 0:
            raise ExecutionError(f"cannot advance clock by {seconds} s")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to an absolute time, which must not be in the past."""
        if timestamp < self._now:
            raise ExecutionError(
                f"cannot rewind clock from {self._now} to {timestamp}"
            )
        self._now = timestamp
        return self._now

    def __repr__(self) -> str:
        return f"SimulatedClock(t={self._now:.3f}s)"
