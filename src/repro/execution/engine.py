"""The composition execution engine.

Interprets a :class:`~repro.composition.task.Task` pattern tree against a
:class:`~repro.composition.selection.CompositionPlan`:

* **sequence** — children run back to back on the simulated clock;
* **parallel** — branches run concurrently; the clock advances by the
  slowest branch while costs accrue across all of them;
* **conditional** — one branch is drawn according to the declared
  probabilities (seeded RNG — deterministic experiments);
* **loop** — the body repeats; the iteration count is drawn uniformly from
  ``[1, max_iterations]`` unless an expected count pins it.

Each activity invocation goes through the :class:`DynamicBinder`, calls the
pluggable :data:`Invoker` (the environment simulator provides one that
returns *observed* QoS), feeds the monitor, and — on failure — retries over
the remaining ranked services before giving up.

The resilience layer (``docs/RESILIENCE.md``) hooks in here: an optional
:class:`~repro.resilience.policies.RetryPolicy` bounds the attempt budget
and inserts exponential-backoff delays (with seeded jitter) on the
simulated clock, a :class:`~repro.resilience.policies.TimeoutPolicy` turns
over-deadline invocations into failures, a
:class:`~repro.resilience.breaker.BreakerRegistry` learns each outcome, and
a :class:`~repro.resilience.policies.DegradationPolicy` lets *optional*
activities be skipped (a degraded completion) instead of failing the
composition outright.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import BindingError, ExecutionError
from repro.qos.properties import QoSProperty
from repro.qos.values import QoSVector
from repro.services.description import ServiceDescription
from repro.composition.selection import CompositionPlan
from repro.composition.task import (
    Activity,
    Conditional,
    Leaf,
    Loop,
    Node,
    Parallel,
    Sequence,
    Task,
)
from repro.execution.binding import DynamicBinder
from repro.execution.clock import SimulatedClock
from repro.adaptation.monitoring import QoSMonitor
from repro.observability import core as observability_core
from repro.resilience.breaker import BreakerRegistry
from repro.resilience.policies import (
    DegradationPolicy,
    RetryPolicy,
    TimeoutPolicy,
)

#: Invokes a service at a simulated timestamp.  Returns the *observed* QoS
#: of the invocation, or None when the invocation failed outright.
Invoker = Callable[[ServiceDescription, float], Optional[QoSVector]]


@dataclass
class InvocationRecord:
    """One concrete service invocation in an execution trace."""

    activity_name: str
    service_id: str
    started_at: float
    observed_qos: Optional[QoSVector]
    succeeded: bool
    attempt: int


@dataclass
class ExecutionReport:
    """The outcome of executing one composition."""

    task_name: str
    succeeded: bool
    started_at: float
    finished_at: float
    invocations: List[InvocationRecord] = field(default_factory=list)
    total_cost: float = 0.0
    failed_activity: Optional[str] = None
    #: Optional activities skipped under graceful degradation (in skip
    #: order).  Non-empty ⇒ the run completed *degraded*.
    skipped_activities: List[str] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at

    @property
    def degraded(self) -> bool:
        return bool(self.skipped_activities)

    def invocations_of(self, activity_name: str) -> List[InvocationRecord]:
        return [r for r in self.invocations if r.activity_name == activity_name]


class ExecutionEngine:
    """Pattern-tree interpreter with dynamic binding and retry-on-failure."""

    def __init__(
        self,
        properties: Mapping[str, QoSProperty],
        invoker: Invoker,
        clock: Optional[SimulatedClock] = None,
        binder: Optional[DynamicBinder] = None,
        monitor: Optional[QoSMonitor] = None,
        max_attempts_per_activity: int = 3,
        seed: int = 0,
        observability=None,
        retry: Optional[RetryPolicy] = None,
        timeout: Optional[TimeoutPolicy] = None,
        breakers: Optional[BreakerRegistry] = None,
        degradation: Optional[DegradationPolicy] = None,
    ) -> None:
        self.properties = dict(properties)
        self.invoker = invoker
        self.clock = clock if clock is not None else SimulatedClock()
        self.binder = binder if binder is not None else DynamicBinder(properties)
        self.monitor = monitor
        # An explicit retry policy owns the attempt budget.
        self.retry = retry
        self.max_attempts = (
            retry.max_attempts if retry is not None
            else max_attempts_per_activity
        )
        self.timeout = timeout
        self.breakers = breakers
        self.degradation = degradation
        self.obs = observability_core.resolve(observability)
        self._rng = random.Random(seed)
        # Backoff jitter draws from its own stream so retries never
        # perturb the conditional/loop draws — with a fixed seed the same
        # control flow unfolds whether or not providers fail.
        self._backoff_rng = random.Random(seed + 0x5F5E1)

    # ------------------------------------------------------------------
    def execute(self, plan: CompositionPlan) -> ExecutionReport:
        """Run the composition to completion (or first unrecoverable fail)."""
        report = ExecutionReport(
            task_name=plan.task.name,
            succeeded=True,
            started_at=self.clock.now(),
            finished_at=self.clock.now(),
        )
        try:
            self._run(plan.task.root, plan, report)
        except _ActivityFailed as failure:
            report.succeeded = False
            report.failed_activity = failure.activity_name
        report.finished_at = self.clock.now()
        return report

    # ------------------------------------------------------------------
    def _run(self, node: Node, plan: CompositionPlan, report: ExecutionReport) -> None:
        if isinstance(node, Leaf):
            self._run_activity(node.activity, plan, report)
            return
        if isinstance(node, Sequence):
            for member in node.members:
                self._run(member, plan, report)
            return
        if isinstance(node, Parallel):
            # Branches run concurrently: execute each against a forked clock
            # and advance the shared clock by the slowest branch.  The
            # shared clock must be restored even when a branch fails, or
            # the engine would keep timing against the fork.
            start = self.clock.now()
            branch_ends: List[float] = []
            shared = self.clock
            try:
                for branch in node.branches:
                    self.clock = SimulatedClock(start)
                    self._run(branch, plan, report)
                    branch_ends.append(self.clock.now())
            finally:
                self.clock = shared
            self.clock.advance_to(max(branch_ends) if branch_ends else start)
            return
        if isinstance(node, Conditional):
            probabilities = node.branch_probabilities()
            pick = self._rng.random()
            cumulative = 0.0
            chosen = node.branches[-1]
            for branch, p in zip(node.branches, probabilities):
                cumulative += p
                if pick <= cumulative:
                    chosen = branch
                    break
            self._run(chosen, plan, report)
            return
        if isinstance(node, Loop):
            if node.expected_iterations is not None:
                iterations = max(1, round(node.expected_iterations))
            else:
                iterations = self._rng.randint(1, node.max_iterations)
            for _ in range(iterations):
                self._run(node.body, plan, report)
            return
        raise ExecutionError(f"unknown pattern node {type(node).__name__}")

    def _run_activity(
        self, activity: Activity, plan: CompositionPlan, report: ExecutionReport
    ) -> None:
        activity_name = activity.name
        excluded: List[str] = []
        obs = self.obs
        for attempt in range(1, self.max_attempts + 1):
            if attempt > 1:
                obs.counter("retries_total").inc()
                if self.retry is not None:
                    backoff = self.retry.backoff_seconds(
                        attempt - 1, self._backoff_rng
                    )
                    if backoff > 0.0:
                        self.clock.advance(backoff)
            with obs.span(
                "invoke", activity=activity_name, attempt=attempt
            ) as span:
                try:
                    service = self._bind_excluding(plan, activity_name, excluded)
                except BindingError:
                    obs.counter("invocations_total", status="unbindable").inc()
                    if self._skip_degraded(activity, report):
                        return
                    raise _ActivityFailed(activity_name)
                started = self.clock.now()
                observed = self.invoker(service, started)
                timed_out = self.timeout is not None and observed is not None \
                    and self.timeout.expired(observed.get("response_time"))
                span.set(
                    service_id=service.service_id,
                    succeeded=observed is not None and not timed_out,
                )
                if observed is None or timed_out:
                    if timed_out:
                        # The caller abandoned the call at the deadline:
                        # time passes by the timeout, not the response.
                        self.clock.advance(
                            self.timeout.invoke_timeout_ms / 1000.0
                        )
                        span.set(timed_out=True)
                    report.invocations.append(
                        InvocationRecord(
                            activity_name, service.service_id, started, None,
                            succeeded=False, attempt=attempt,
                        )
                    )
                    obs.counter(
                        "invocations_total",
                        status="timeout" if timed_out else "failed",
                    ).inc()
                    if self.breakers is not None:
                        self.breakers.record(service.service_id, False)
                    if self.monitor is not None:
                        self.monitor.report_failure(service.service_id, started)
                    excluded.append(service.service_id)
                    continue
                # Advance time by the observed response time (if measured).
                # Advance the (possibly forked, under parallel branches)
                # engine clock; the span keeps the observed response time
                # as an attribute since the tracer watches the shared clock.
                response_ms = observed.get("response_time")
                if response_ms is not None:
                    self.clock.advance(response_ms / 1000.0)
                    if obs.enabled:
                        span.set(response_ms=response_ms)
                        obs.histogram("invoke_sim_seconds").observe(
                            response_ms / 1000.0
                        )
                cost = observed.get("cost")
                if cost is not None:
                    report.total_cost += cost
                if self.breakers is not None:
                    self.breakers.record(service.service_id, True)
                if self.monitor is not None:
                    self.monitor.observe_vector(service.service_id, observed, started)
                report.invocations.append(
                    InvocationRecord(
                        activity_name, service.service_id, started, observed,
                        succeeded=True, attempt=attempt,
                    )
                )
                obs.counter("invocations_total", status="ok").inc()
                return
        obs.counter("activities_exhausted_total").inc()
        if self._skip_degraded(activity, report):
            return
        raise _ActivityFailed(activity_name)

    def _skip_degraded(
        self, activity: Activity, report: ExecutionReport
    ) -> bool:
        """Skip an exhausted *optional* activity under graceful degradation.

        Returns True when the activity was skipped (the composition keeps
        going, completing degraded); False means the failure is fatal.
        """
        if (
            self.degradation is None
            or not self.degradation.enabled
            or not activity.optional
        ):
            return False
        report.skipped_activities.append(activity.name)
        self.obs.counter("activities_skipped_total").inc()
        return True

    def _bind_excluding(
        self, plan: CompositionPlan, activity_name: str, excluded: List[str]
    ) -> ServiceDescription:
        base_liveness = self.binder.liveness

        def probe(service: ServiceDescription) -> bool:
            if service.service_id in excluded:
                return False
            return base_liveness(service) if base_liveness is not None else True

        # Temporarily narrow the binder's liveness probe rather than
        # rebuilding it, so per-policy state (round-robin cursors) persists
        # across retries.
        self.binder.liveness = probe
        try:
            return self.binder.bind(plan, activity_name)
        finally:
            self.binder.liveness = base_liveness


class _ActivityFailed(ExecutionError):
    def __init__(self, activity_name: str) -> None:
        super().__init__(f"activity {activity_name!r} failed on all attempts")
        self.activity_name = activity_name
