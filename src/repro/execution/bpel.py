"""Abstract-BPEL parsing and serialisation (§VI.2.3, Fig. VI.13).

The prototype specifies user tasks as *abstract BPEL*: structured activities
without partner bindings.  This module implements the dialect the paper's
examples use, mapped onto the pattern tree of
:mod:`repro.composition.task`:

.. code-block:: xml

    <process name="shopping">
      <sequence>
        <invoke name="Browse" capability="task:Browse"
                inputs="data:Query" outputs="data:Catalogue"/>
        <flow>                                  <!-- parallel -->
          <invoke name="PayCard" capability="task:Payment"/>
          <invoke name="Notify"  capability="task:Notification"/>
        </flow>
        <switch>                                <!-- conditional -->
          <case probability="0.7"> ... </case>
          <case probability="0.3"> ... </case>
        </switch>
        <while maxIterations="3" expectedIterations="2"> ... </while>
      </sequence>
    </process>

``parse_bpel`` turns a document into a :class:`Task` (which
:func:`repro.adaptation.behaviour_graph.task_to_graph` then transforms —
the Fig. VI.13 pipeline); ``to_bpel`` round-trips a task back to XML.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import List, Optional

from repro.errors import BpelParseError
from repro.composition.task import (
    Activity,
    Conditional,
    Leaf,
    Loop,
    Node,
    Parallel,
    Sequence,
    Task,
)


def parse_bpel(document: str) -> Task:
    """Parse an abstract-BPEL document into a user task."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as error:
        raise BpelParseError(f"malformed XML: {error}") from None
    if root.tag != "process":
        raise BpelParseError(f"root element must be <process>, got <{root.tag}>")
    name = root.get("name")
    if not name:
        raise BpelParseError("<process> requires a name attribute")
    # Executable documents carry a <qos> annotation block; the abstract
    # parse ignores it (like the binding attributes on <invoke>).
    children = [child for child in root if child.tag != "qos"]
    if len(children) != 1:
        raise BpelParseError("<process> must contain exactly one activity")
    return Task(name, _parse_node(children[0]))


def _parse_node(element: ET.Element) -> Node:
    tag = element.tag
    if tag == "invoke":
        return Leaf(_parse_activity(element))
    if tag == "sequence":
        members = [_parse_node(child) for child in element]
        if not members:
            raise BpelParseError("<sequence> must contain at least one activity")
        if len(members) == 1:
            return members[0]
        return Sequence(tuple(members))
    if tag == "flow":
        branches = [_parse_node(child) for child in element]
        if len(branches) < 2:
            raise BpelParseError("<flow> needs at least two branches")
        return Parallel(tuple(branches))
    if tag == "switch":
        cases = list(element)
        if any(case.tag != "case" for case in cases):
            raise BpelParseError("<switch> children must be <case>")
        if len(cases) < 2:
            raise BpelParseError("<switch> needs at least two cases")
        branches: List[Node] = []
        probabilities: List[Optional[float]] = []
        for case in cases:
            inner = list(case)
            if len(inner) != 1:
                raise BpelParseError("<case> must contain exactly one activity")
            branches.append(_parse_node(inner[0]))
            raw = case.get("probability")
            probabilities.append(float(raw) if raw is not None else None)
        if all(p is None for p in probabilities):
            return Conditional(tuple(branches))
        if any(p is None for p in probabilities):
            raise BpelParseError(
                "either all <case> elements carry a probability or none does"
            )
        return Conditional(tuple(branches), tuple(probabilities))  # type: ignore[arg-type]
    if tag == "while":
        inner = list(element)
        if len(inner) != 1:
            raise BpelParseError("<while> must contain exactly one activity")
        raw_max = element.get("maxIterations")
        if raw_max is None:
            raise BpelParseError("<while> requires maxIterations")
        try:
            max_iterations = int(raw_max)
        except ValueError:
            raise BpelParseError(
                f"maxIterations must be an integer, got {raw_max!r}"
            ) from None
        raw_expected = element.get("expectedIterations")
        expected = float(raw_expected) if raw_expected is not None else None
        return Loop(_parse_node(inner[0]), max_iterations, expected)
    raise BpelParseError(f"unknown abstract-BPEL element <{tag}>")


def _parse_activity(element: ET.Element) -> Activity:
    name = element.get("name")
    if not name:
        raise BpelParseError("<invoke> requires a name attribute")
    capability = element.get("capability") or f"task:{name}"
    inputs = frozenset(filter(None, (element.get("inputs") or "").split()))
    outputs = frozenset(filter(None, (element.get("outputs") or "").split()))
    return Activity(name, capability, inputs=inputs, outputs=outputs)


# ----------------------------------------------------------------------
def to_bpel(task: Task) -> str:
    """Serialise a user task back to abstract BPEL."""
    process = ET.Element("process", {"name": task.name})
    process.append(_emit(task.root))
    _indent(process)
    return ET.tostring(process, encoding="unicode")


def to_executable_bpel(plan) -> str:
    """Serialise a selected composition as *executable* BPEL (§VI.2.4).

    The abstract task's ``<invoke>`` elements gain concrete bindings: the
    selected service's id/name as the partner endpoint, the ranked
    alternates (for dynamic binding) as a space-separated attribute, and
    the plan-time aggregated QoS as a ``<qos>`` annotation on the process.
    The document stays parseable by :func:`parse_bpel` (extra attributes
    are ignored on the abstract path).
    """
    from repro.composition.selection import CompositionPlan

    if not isinstance(plan, CompositionPlan):
        raise BpelParseError("to_executable_bpel expects a CompositionPlan")
    process = ET.Element(
        "process",
        {"name": plan.task.name, "executable": "true"},
    )
    qos_element = ET.SubElement(process, "qos")
    for name, value in sorted(plan.aggregated_qos.items()):
        ET.SubElement(
            qos_element, "aggregated",
            {"property": name, "value": f"{value:g}",
             "approach": plan.approach.value},
        )
    body = _emit(plan.task.root)
    for invoke in ([body] if body.tag == "invoke" else body.iter("invoke")):
        activity_name = invoke.get("name")
        selection = plan.selections.get(activity_name)
        if selection is None:
            continue
        invoke.set("partnerService", selection.primary.service_id)
        invoke.set("partnerName", selection.primary.name)
        if selection.alternates:
            invoke.set(
                "alternates",
                " ".join(s.service_id for s in selection.alternates),
            )
    process.append(body)
    _indent(process)
    return ET.tostring(process, encoding="unicode")


def _emit(node: Node) -> ET.Element:
    if isinstance(node, Leaf):
        attrs = {"name": node.activity.name, "capability": node.activity.capability}
        if node.activity.inputs:
            attrs["inputs"] = " ".join(sorted(node.activity.inputs))
        if node.activity.outputs:
            attrs["outputs"] = " ".join(sorted(node.activity.outputs))
        return ET.Element("invoke", attrs)
    if isinstance(node, Sequence):
        element = ET.Element("sequence")
        for member in node.members:
            element.append(_emit(member))
        return element
    if isinstance(node, Parallel):
        element = ET.Element("flow")
        for branch in node.branches:
            element.append(_emit(branch))
        return element
    if isinstance(node, Conditional):
        element = ET.Element("switch")
        probabilities = node.probabilities or tuple(
            None for _ in node.branches  # type: ignore[misc]
        )
        for branch, probability in zip(node.branches, probabilities):
            attrs = {}
            if probability is not None:
                attrs["probability"] = f"{probability:g}"
            case = ET.Element("case", attrs)
            case.append(_emit(branch))
            element.append(case)
        return element
    if isinstance(node, Loop):
        attrs = {"maxIterations": str(node.max_iterations)}
        if node.expected_iterations is not None:
            attrs["expectedIterations"] = f"{node.expected_iterations:g}"
        element = ET.Element("while", attrs)
        element.append(_emit(node.body))
        return element
    raise BpelParseError(f"cannot serialise node {type(node).__name__}")


def _indent(element: ET.Element, level: int = 0) -> None:
    pad = "\n" + "  " * level
    if len(element):
        if not element.text or not element.text.strip():
            element.text = pad + "  "
        for child in element:
            _indent(child, level + 1)
            if not child.tail or not child.tail.strip():
                child.tail = pad + "  "
        last = element[-1]
        if not last.tail or not last.tail.strip():
            last.tail = pad
    elif level and (not element.tail or not element.tail.strip()):
        element.tail = pad
