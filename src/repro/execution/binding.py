"""Dynamic binding of services to activities (§I.5).

QASSA returns *several* ranked services per activity; the actual binding is
deferred to the instant the activity is about to execute.  Three policies
are provided:

* :attr:`BindingPolicy.UTILITY` (default) — pick, among the still-alive
  ranked services, the one whose **run-time QoS estimate** (monitor EWMA,
  falling back to advertised values) yields the best utility under the
  user's weights — absorbing the gap between advertised and delivered QoS
  without a full adaptation round;
* :attr:`BindingPolicy.FAILOVER` — always the highest-ranked live service
  (QASSA's original ordering), ignoring run-time estimates: cheapest, and
  the natural baseline for the dynamic-binding ablation;
* :attr:`BindingPolicy.ROUND_ROBIN` — rotate over the live ranked services
  per activity, spreading load (and battery drain) across providers.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Mapping, Optional

from repro.errors import BindingError
from repro.qos.properties import QoSProperty
from repro.services.description import ServiceDescription
from repro.composition.selection import CompositionPlan
from repro.composition.utility import Normalizer, service_utility
from repro.adaptation.monitoring import QoSMonitor
from repro.observability import core as observability_core
from repro.resilience.breaker import BreakerRegistry

#: Tells the binder whether a service is currently reachable.
LivenessProbe = Callable[[ServiceDescription], bool]


class BindingPolicy(enum.Enum):
    """How the binder chooses among an activity's live ranked services."""

    UTILITY = "utility"
    FAILOVER = "failover"
    ROUND_ROBIN = "round_robin"


class DynamicBinder:
    """Just-in-time activity → service binding."""

    def __init__(
        self,
        properties: Mapping[str, QoSProperty],
        monitor: Optional[QoSMonitor] = None,
        liveness: Optional[LivenessProbe] = None,
        policy: BindingPolicy = BindingPolicy.UTILITY,
        observability=None,
        breakers: Optional[BreakerRegistry] = None,
    ) -> None:
        self.properties = dict(properties)
        self.monitor = monitor
        self.liveness = liveness
        self.policy = policy
        self.obs = observability_core.resolve(observability)
        self.breakers = breakers
        self._round_robin_state: Dict[str, int] = {}

    def bind(self, plan: CompositionPlan, activity_name: str) -> ServiceDescription:
        """Choose the service to invoke for one activity, right now.

        Raises :class:`BindingError` when every ranked service is dead.
        """
        with self.obs.span(
            "bind", activity=activity_name, policy=self.policy.value
        ) as span:
            service = self._bind(plan, activity_name, span)
        return service

    def _bind(
        self, plan: CompositionPlan, activity_name: str, span
    ) -> ServiceDescription:
        selection = plan.selections.get(activity_name)
        if selection is None:
            self.obs.counter("bind_failures_total").inc()
            raise BindingError(f"plan has no activity {activity_name!r}")

        alive = [
            s for s in selection.services
            if self.liveness is None or self.liveness(s)
        ]
        if self.breakers is not None and alive:
            # Fail fast past providers with open circuit breakers — but if
            # *every* live candidate is open-circuit, bypass the breakers
            # (a last-ditch probe beats guaranteed failure).
            admitted = [
                s for s in alive if self.breakers.allow(s.service_id)
            ]
            if admitted:
                alive = admitted
            else:
                self.obs.counter("breaker_saturated_total").inc()
        span.set(ranked=len(selection.services), alive=len(alive))
        if not alive:
            self.obs.counter("bind_failures_total").inc()
            raise BindingError(
                f"no live service for activity {activity_name!r} "
                f"(all {len(selection.services)} ranked services are down)"
            )

        if self.policy is BindingPolicy.FAILOVER or len(alive) == 1:
            service = alive[0]
        elif self.policy is BindingPolicy.ROUND_ROBIN:
            index = self._round_robin_state.get(activity_name, 0)
            self._round_robin_state[activity_name] = index + 1
            service = alive[index % len(alive)]
        else:
            service = self._best_by_runtime_utility(plan, alive)
        span.set(service_id=service.service_id)
        self.obs.counter("bind_total").inc()
        return service

    def _best_by_runtime_utility(
        self, plan: CompositionPlan, alive
    ) -> ServiceDescription:
        if self.monitor is None:
            return alive[0]
        # Without any run-time evidence the estimates are just the
        # advertisements QASSA already optimised over — respect the plan's
        # ranking instead of re-ranking on a different (local) utility.
        if not any(
            self.monitor.estimate(service.service_id, name) is not None
            for service in alive
            for name in self.properties
        ):
            return alive[0]
        weights = plan.request.normalised_weights(self.properties)
        vectors = [
            self.monitor.estimated_vector(s.service_id, s.advertised_qos)
            for s in alive
        ]
        normalizer = Normalizer.from_vectors(vectors, self.properties)
        scored = [
            (service_utility(vector, normalizer, weights), service)
            for vector, service in zip(vectors, alive)
        ]
        best_utility, best_service = scored[0]
        for utility, service in scored[1:]:
            if utility > best_utility:
                best_utility, best_service = utility, service
        return best_service
