"""Labelled behavioural graphs and the task → graph transformation (§V.4).

Behavioural adaptation compares *behaviours* — alternative activity
structures fulfilling the same task — as directed labelled graphs:

* a **vertex** per abstract activity, labelled with its capability concept
  and carrying its data signature (inputs/outputs);
* an **edge** per direct control dependency;
* loop patterns are *simplified* (Fig. V.4): the body appears once and the
  enclosing vertices are annotated ``in_loop`` — homeomorphism determination
  works on the simplified acyclic structure, as in the paper.

The transformation from a pattern tree recursively computes each node's
entry/exit vertex sets and wires sequences end-to-start; parallel and
conditional branches become parallel paths (conditional edges are annotated
``xor`` so the comparison can distinguish them when needed).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.errors import BehaviouralAdaptationError
from repro.composition.task import (
    Activity,
    Conditional,
    Leaf,
    Loop,
    Node,
    Parallel,
    Sequence,
    Task,
)


@dataclass(frozen=True)
class Vertex:
    """One behavioural-graph vertex (an abstract activity occurrence).

    ``branch_path`` records the conditional branches enclosing the
    activity as ``(conditional id, branch index)`` pairs, outermost first.
    Two vertices whose paths name the same conditional with *different*
    branch indexes are mutually exclusive at run time — at most one of them
    executes — which the homeomorphism matcher exploits for the merge-style
    particular vertex mappings of §V.6.2.3.
    """

    vertex_id: str
    label: str                      # capability concept URI
    inputs: FrozenSet[str] = frozenset()
    outputs: FrozenSet[str] = frozenset()
    in_loop: bool = False
    activity_name: Optional[str] = None
    branch_path: Tuple[Tuple[int, int], ...] = ()

    def mutually_exclusive_with(self, other: "Vertex") -> bool:
        """True when the two activities can never both execute (they sit in
        different branches of the same conditional)."""
        mine = dict(self.branch_path)
        for conditional_id, branch in other.branch_path:
            if conditional_id in mine and mine[conditional_id] != branch:
                return True
        return False

    def __str__(self) -> str:
        return f"{self.vertex_id}:{self.label}"


@dataclass(frozen=True)
class Edge:
    """A control-dependency edge; ``xor`` marks conditional branching."""

    source: str
    target: str
    xor: bool = False


class BehaviouralGraph:
    """A directed labelled graph over activity vertices."""

    def __init__(self, name: str = "behaviour") -> None:
        self.name = name
        self._vertices: Dict[str, Vertex] = {}
        self._succ: Dict[str, Set[str]] = {}
        self._pred: Dict[str, Set[str]] = {}
        self._edges: Dict[Tuple[str, str], Edge] = {}

    # ------------------------------------------------------------------
    def add_vertex(self, vertex: Vertex) -> Vertex:
        if vertex.vertex_id in self._vertices:
            raise BehaviouralAdaptationError(
                f"duplicate vertex id {vertex.vertex_id!r}"
            )
        self._vertices[vertex.vertex_id] = vertex
        self._succ.setdefault(vertex.vertex_id, set())
        self._pred.setdefault(vertex.vertex_id, set())
        return vertex

    def add_edge(self, source: str, target: str, xor: bool = False) -> Edge:
        for v in (source, target):
            if v not in self._vertices:
                raise BehaviouralAdaptationError(f"unknown vertex {v!r}")
        edge = Edge(source, target, xor)
        self._edges[(source, target)] = edge
        self._succ[source].add(target)
        self._pred[target].add(source)
        return edge

    # ------------------------------------------------------------------
    def vertex(self, vertex_id: str) -> Vertex:
        try:
            return self._vertices[vertex_id]
        except KeyError:
            raise BehaviouralAdaptationError(
                f"unknown vertex {vertex_id!r}"
            ) from None

    def vertices(self) -> List[Vertex]:
        return list(self._vertices.values())

    def vertex_ids(self) -> List[str]:
        return list(self._vertices)

    def edges(self) -> List[Edge]:
        return list(self._edges.values())

    def successors(self, vertex_id: str) -> Set[str]:
        return set(self._succ.get(vertex_id, ()))

    def predecessors(self, vertex_id: str) -> Set[str]:
        return set(self._pred.get(vertex_id, ()))

    def out_degree(self, vertex_id: str) -> int:
        return len(self._succ.get(vertex_id, ()))

    def in_degree(self, vertex_id: str) -> int:
        return len(self._pred.get(vertex_id, ()))

    def sources(self) -> List[str]:
        return [v for v in self._vertices if not self._pred[v]]

    def sinks(self) -> List[str]:
        return [v for v in self._vertices if not self._succ[v]]

    def vertex_count(self) -> int:
        return len(self._vertices)

    def edge_count(self) -> int:
        return len(self._edges)

    def labels(self) -> Set[str]:
        return {v.label for v in self._vertices.values()}

    def has_edge(self, source: str, target: str) -> bool:
        return (source, target) in self._edges

    # ------------------------------------------------------------------
    def topological_order(self) -> List[str]:
        """Kahn topological sort; raises on cycles (graphs are simplified,
        so a cycle indicates a malformed hand-built graph)."""
        in_deg = {v: self.in_degree(v) for v in self._vertices}
        ready = sorted([v for v, d in in_deg.items() if d == 0])
        order: List[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for succ in sorted(self._succ[current]):
                in_deg[succ] -= 1
                if in_deg[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._vertices):
            raise BehaviouralAdaptationError(
                f"behavioural graph {self.name!r} contains a cycle"
            )
        return order

    def find_path(
        self,
        source: str,
        target: str,
        forbidden: Set[str],
    ) -> Optional[List[str]]:
        """A shortest directed path source→target avoiding ``forbidden``
        interior vertices (endpoints excepted).  Returns the vertex list
        including endpoints, or None."""
        if source == target:
            return [source]
        frontier = [source]
        parents: Dict[str, str] = {}
        seen = {source}
        while frontier:
            next_frontier: List[str] = []
            for current in frontier:
                for succ in sorted(self._succ[current]):
                    if succ in seen:
                        continue
                    if succ != target and succ in forbidden:
                        continue
                    parents[succ] = current
                    if succ == target:
                        path = [target]
                        while path[-1] != source:
                            path.append(parents[path[-1]])
                        path.reverse()
                        return path
                    seen.add(succ)
                    next_frontier.append(succ)
            frontier = next_frontier
        return None

    def __repr__(self) -> str:
        return (
            f"BehaviouralGraph({self.name!r}, |V|={self.vertex_count()}, "
            f"|E|={self.edge_count()})"
        )


# ----------------------------------------------------------------------
# task -> behavioural graph transformation
# ----------------------------------------------------------------------
def task_to_graph(task: Task) -> BehaviouralGraph:
    """Transform a user task into its behavioural graph (Fig. V.3).

    This is the operation whose cost Fig. VI.13 measures (there, from
    abstract BPEL — :func:`repro.execution.bpel.parse_bpel` feeds the same
    transformation).
    """
    graph = BehaviouralGraph(task.name)
    counter = itertools.count(1)
    conditional_counter = itertools.count(1)

    def fresh_vertex(
        activity: Activity,
        in_loop: bool,
        branch_path: Tuple[Tuple[int, int], ...],
    ) -> Vertex:
        vertex = Vertex(
            vertex_id=f"v{next(counter)}",
            label=activity.capability,
            inputs=activity.inputs,
            outputs=activity.outputs,
            in_loop=in_loop,
            activity_name=activity.name,
            branch_path=branch_path,
        )
        graph.add_vertex(vertex)
        return vertex

    def build(
        node: Node,
        in_loop: bool,
        branch_path: Tuple[Tuple[int, int], ...],
    ) -> Tuple[List[str], List[str]]:
        """Returns (entry vertex ids, exit vertex ids)."""
        if isinstance(node, Leaf):
            v = fresh_vertex(node.activity, in_loop, branch_path)
            return [v.vertex_id], [v.vertex_id]
        if isinstance(node, Sequence):
            entries: List[str] = []
            exits: List[str] = []
            for member in node.members:
                m_entries, m_exits = build(member, in_loop, branch_path)
                if not entries:
                    entries = m_entries
                else:
                    for e in exits:
                        for s in m_entries:
                            graph.add_edge(e, s)
                exits = m_exits
            return entries, exits
        if isinstance(node, Parallel):
            entries, exits = [], []
            for branch in node.branches:
                b_entries, b_exits = build(branch, in_loop, branch_path)
                entries.extend(b_entries)
                exits.extend(b_exits)
            return entries, exits
        if isinstance(node, Conditional):
            conditional_id = next(conditional_counter)
            entries, exits = [], []
            for index, branch in enumerate(node.branches):
                b_entries, b_exits = build(
                    branch, in_loop,
                    branch_path + ((conditional_id, index),),
                )
                entries.extend(b_entries)
                exits.extend(b_exits)
            return entries, exits
        if isinstance(node, Loop):
            # Loop simplification (Fig. V.4): single body occurrence, marked.
            return build(node.body, True, branch_path)
        raise BehaviouralAdaptationError(
            f"unknown pattern node {type(node).__name__}"
        )

    build(task.root, False, ())

    # Annotate conditional entry edges as xor, in a second pass: when a
    # Conditional node's branches all hang off the same predecessors, their
    # first edges are alternatives, not parallel work.  We re-walk the tree
    # and mark edges entering conditional branches.
    def mark_xor(node: Node) -> None:
        if isinstance(node, Conditional):
            branch_entry_names = set()
            for branch in node.branches:
                first = branch.activities()[0]
                branch_entry_names.add(first.name)
            for edge in graph.edges():
                target = graph.vertex(edge.target)
                if target.activity_name in branch_entry_names:
                    graph._edges[(edge.source, edge.target)] = Edge(
                        edge.source, edge.target, xor=True
                    )
        for child in node.children():
            mark_xor(child)

    mark_xor(task.root)
    return graph
