"""Federated task class repositories (Ch. VII short-term perspective).

In a truly ad hoc environment there is no central Task Class Repository:
each device carries a shard — the behaviours its owner published.  The
thesis' perspectives chapter points at distributing the repository; this
module implements the natural design:

* a :class:`RepositoryShard` is a plain
  :class:`~repro.adaptation.task_class.TaskClassRepository` tagged with its
  hosting device;
* a :class:`FederatedTaskClassRepository` fans queries out over the shards
  whose device is currently *alive* (dead devices take their behaviours
  with them — exactly the dynamics that motivate behavioural adaptation in
  the first place), merging task classes by name.

The federation quacks like a repository for the operations behavioural
adaptation uses (iteration, ``require``, ``classes_for``), so it drops into
:class:`~repro.adaptation.behavioural.BehaviouralAdaptation` unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import BehaviouralAdaptationError
from repro.adaptation.behaviour_graph import task_to_graph
from repro.adaptation.homeomorphism import (
    HomeomorphismConfig,
    HomeomorphismResult,
    find_homeomorphism,
)
from repro.adaptation.task_class import Behaviour, TaskClass, TaskClassRepository
from repro.composition.task import Task
from repro.semantics.ontology import Ontology

#: Decides whether a shard's hosting device is currently reachable.
DeviceLiveness = Callable[[str], bool]


@dataclass
class RepositoryShard:
    """One device's slice of the federated repository."""

    device_id: str
    repository: TaskClassRepository


class FederatedTaskClassRepository:
    """A liveness-aware union of per-device repository shards."""

    def __init__(
        self,
        ontology: Optional[Ontology] = None,
        liveness: Optional[DeviceLiveness] = None,
    ) -> None:
        self.ontology = ontology
        self.liveness = liveness
        self._shards: Dict[str, RepositoryShard] = {}

    # ------------------------------------------------------------------
    def attach(self, device_id: str, repository: TaskClassRepository) -> RepositoryShard:
        """Register a device's shard (replacing any previous one)."""
        shard = RepositoryShard(device_id, repository)
        self._shards[device_id] = shard
        return shard

    def detach(self, device_id: str) -> None:
        """Forget a device's shard entirely."""
        self._shards.pop(device_id, None)

    def shards(self) -> List[RepositoryShard]:
        return list(self._shards.values())

    def live_shards(self) -> List[RepositoryShard]:
        """Shards whose device currently answers."""
        return [
            shard
            for shard in self._shards.values()
            if self.liveness is None or self.liveness(shard.device_id)
        ]

    # ------------------------------------------------------------------
    # repository protocol (what BehaviouralAdaptation consumes)
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[TaskClass]:
        return iter(self._merged().values())

    def __len__(self) -> int:
        return len(self._merged())

    def get(self, name: str) -> Optional[TaskClass]:
        return self._merged().get(name)

    def require(self, name: str) -> TaskClass:
        merged = self._merged()
        task_class = merged.get(name)
        if task_class is None:
            raise BehaviouralAdaptationError(
                f"no live shard offers task class {name!r}"
            )
        return task_class

    def classes_for(
        self,
        task: Task,
        config: HomeomorphismConfig = HomeomorphismConfig(),
    ) -> List[Tuple[TaskClass, Behaviour, HomeomorphismResult]]:
        """Same contract as TaskClassRepository.classes_for, over the
        currently-live union."""
        pattern = task_to_graph(task)
        hits: List[Tuple[TaskClass, Behaviour, HomeomorphismResult]] = []
        for task_class in self._merged().values():
            for behaviour in task_class:
                outcome = find_homeomorphism(
                    pattern, behaviour.graph, self.ontology, config
                )
                if outcome.found:
                    hits.append((task_class, behaviour, outcome))
                    break
        return hits

    # ------------------------------------------------------------------
    def _merged(self) -> Dict[str, TaskClass]:
        """Union of live shards' classes, merged by class name.

        Behaviours sharing a name across shards are deduplicated
        first-shard-wins (device id order keeps the merge deterministic).
        """
        merged: Dict[str, TaskClass] = {}
        for shard in sorted(self.live_shards(), key=lambda s: s.device_id):
            for task_class in shard.repository:
                target = merged.get(task_class.name)
                if target is None:
                    target = TaskClass(task_class.name, task_class.description)
                    merged[task_class.name] = target
                for behaviour in task_class:
                    try:
                        target.add(behaviour)
                    except BehaviouralAdaptationError:
                        pass  # same-named behaviour already merged
        return merged
