"""QoS-driven composition adaptation (S8-S10, Chapter V).

During execution, the QoS actually delivered by the selected services
fluctuates (churn, mobility, wireless decline).  This package implements the
paper's adaptation stack:

* :mod:`repro.adaptation.monitoring` — global and *proactive* QoS
  monitoring: run-time observations, EWMA forecasting, violation detection
  before the breach happens (§V.1.1);
* :mod:`repro.adaptation.substitution` — the first adaptation strategy:
  replace the under-performing service with a pre-selected alternate
  (§V.1.2);
* :mod:`repro.adaptation.task_class` — the *task class* concept (§V.5):
  a repository of functionally equivalent behaviours for a task;
* :mod:`repro.adaptation.behaviour_graph` — labelled behavioural graphs and
  the user-task → graph transformation (§V.4, Figs. V.3-V.4);
* :mod:`repro.adaptation.homeomorphism` — the extended vertex-disjoint
  subgraph homeomorphism determination with semantic vertex matching, data
  constraints and particular (split) vertex mappings (§V.6);
* :mod:`repro.adaptation.behavioural` — the second adaptation strategy:
  re-fulfil the task through an alternative behaviour (§V.3);
* :mod:`repro.adaptation.manager` — the framework tying monitor +
  strategies together (Fig. VI.4).
"""

from repro.adaptation.behaviour_graph import BehaviouralGraph, task_to_graph
from repro.adaptation.behavioural import BehaviouralAdaptation
from repro.adaptation.homeomorphism import (
    HomeomorphismResult,
    find_homeomorphism,
)
from repro.adaptation.manager import AdaptationManager, AdaptationOutcome
from repro.adaptation.monitoring import QoSMonitor, MonitorConfig, QoSObservation
from repro.adaptation.substitution import ServiceSubstitution
from repro.adaptation.task_class import TaskClass, TaskClassRepository

__all__ = [
    "AdaptationManager",
    "AdaptationOutcome",
    "BehaviouralAdaptation",
    "BehaviouralGraph",
    "HomeomorphismResult",
    "MonitorConfig",
    "QoSMonitor",
    "QoSObservation",
    "ServiceSubstitution",
    "TaskClass",
    "TaskClassRepository",
    "find_homeomorphism",
    "task_to_graph",
]
