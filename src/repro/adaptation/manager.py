"""The QoS-driven composition adaptation framework (Fig. VI.4).

:class:`AdaptationManager` wires the pieces together: it deploys a selected
composition plan under the monitor's watch, translates the user's *global*
constraints into per-service watch bounds, reacts to triggers by escalating
through the two strategies —

1. **service substitution** (cheap, local), and if that fails
2. **behavioural adaptation** (re-realise the task through an alternative
   behaviour from the task class repository) —

and records every decision in an audit log the experiments read.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.errors import (
    AdaptationError,
    BehaviouralAdaptationError,
    SubstitutionError,
)
from repro.qos.properties import Direction, QoSProperty
from repro.services.description import ServiceDescription
from repro.services.discovery import QoSConstraint
from repro.composition.selection import CompositionPlan
from repro.composition.task import Activity
from repro.adaptation.behavioural import (
    BehaviouralAdaptation,
    BehaviouralAdaptationResult,
)
from repro.adaptation.monitoring import AdaptationTrigger, QoSMonitor, TriggerKind
from repro.adaptation.substitution import ServiceSubstitution, SubstitutionResult
from repro.observability import core as observability_core


class AdaptationAction(enum.Enum):
    """What the manager did about a trigger."""

    NONE = "none"
    SUBSTITUTION = "substitution"
    BEHAVIOURAL = "behavioural"
    FAILED = "failed"


@dataclass
class AdaptationOutcome:
    """One audit-log entry: what a trigger led to."""

    trigger: AdaptationTrigger
    action: AdaptationAction
    substitution: Optional[SubstitutionResult] = None
    behavioural: Optional[BehaviouralAdaptationResult] = None
    error: Optional[str] = None


#: Supplies fresh substitution candidates for an abstract activity on
#: demand.  Receives the Activity object (not just a name) so the resolver
#: works across behavioural adaptations, where activity names change but
#: capabilities remain.
FreshCandidates = Callable[["Activity"], Sequence[ServiceDescription]]


class AdaptationManager:
    """Escalating QoS-driven adaptation over one running composition."""

    def __init__(
        self,
        properties: Mapping[str, QoSProperty],
        monitor: QoSMonitor,
        substitution: ServiceSubstitution,
        behavioural: Optional[BehaviouralAdaptation] = None,
        fresh_candidates: Optional[FreshCandidates] = None,
        observability=None,
    ) -> None:
        self.properties = dict(properties)
        self.monitor = monitor
        self.substitution = substitution
        self.behavioural = behavioural
        self.fresh_candidates = fresh_candidates
        self.obs = observability_core.resolve(observability)
        self.plan: Optional[CompositionPlan] = None
        self.log: List[AdaptationOutcome] = []
        self._deployed = False

    # ------------------------------------------------------------------
    def deploy(self, plan: CompositionPlan) -> None:
        """Put a composition under adaptation management.

        Global constraints are decomposed into per-service watch bounds by
        an equal-share heuristic: an additive budget (response time, cost)
        is split evenly across activities; multiplicative/min bounds apply
        to each service directly (a composition can never beat its worst
        member on those).
        """
        self.plan = plan
        n = max(len(plan.selections), 1)
        for selection in plan.selections.values():
            bounds: List[QoSConstraint] = []
            for constraint in plan.request.constraints:
                prop = self.properties.get(constraint.property_name)
                if prop is None:
                    continue
                bounds.append(self._per_service_bound(constraint, prop, n))
            self.monitor.watch(selection.primary.service_id, bounds)
        self._deployed = True

    @staticmethod
    def _per_service_bound(
        constraint: QoSConstraint, prop: QoSProperty, activity_count: int
    ) -> QoSConstraint:
        from repro.composition.request import decompose_constraint

        return decompose_constraint(constraint, prop, activity_count)

    # ------------------------------------------------------------------
    def handle(self, trigger: AdaptationTrigger) -> AdaptationOutcome:
        """React to one monitor trigger; escalates through the strategies."""
        if not self._deployed or self.plan is None:
            raise AdaptationError("no composition deployed")

        outcome = AdaptationOutcome(trigger=trigger, action=AdaptationAction.NONE)
        bound_ids = {
            sel.primary.service_id for sel in self.plan.selections.values()
        }
        if trigger.service_id not in bound_ids:
            # Stale trigger about a service we already swapped out.
            self.log.append(outcome)
            return outcome

        # Strategy 1: substitution.
        with self.obs.span(
            "adapt.substitute",
            service_id=trigger.service_id,
            trigger_kind=trigger.kind.value,
            property=trigger.property_name,
        ) as span:
            try:
                fresh: Sequence[ServiceDescription] = ()
                if self.fresh_candidates is not None:
                    activity_name = self._activity_of(trigger.service_id)
                    activity = self.plan.task.activity(activity_name)
                    fresh = self.fresh_candidates(activity)
                result = self.substitution.substitute(
                    self.plan, trigger.service_id, fresh_candidates=fresh
                )
            except SubstitutionError as substitution_error:
                outcome.error = str(substitution_error)
                span.set(succeeded=False)
            else:
                outcome.action = AdaptationAction.SUBSTITUTION
                outcome.substitution = result
                span.set(
                    succeeded=True,
                    replacement=result.replacement.service_id,
                )
                self.monitor.unwatch(result.removed.service_id)
                self._rewatch(result.replacement)
                self.obs.counter(
                    "adaptations_total",
                    action=AdaptationAction.SUBSTITUTION.value,
                ).inc()
                self.log.append(outcome)
                return outcome

        # Strategy 2: behavioural adaptation.
        if self.behavioural is not None:
            with self.obs.span(
                "adapt.behavioural",
                service_id=trigger.service_id,
                trigger_kind=trigger.kind.value,
            ) as span:
                try:
                    result_b = self.behavioural.adapt(self.plan.request)
                except BehaviouralAdaptationError as behavioural_error:
                    outcome.action = AdaptationAction.FAILED
                    outcome.error = (
                        f"{outcome.error}; behavioural: {behavioural_error}"
                    )
                    span.set(succeeded=False)
                else:
                    outcome.action = AdaptationAction.BEHAVIOURAL
                    outcome.behavioural = result_b
                    span.set(succeeded=True)
                    self.deploy(result_b.plan)
        else:
            outcome.action = AdaptationAction.FAILED

        self.obs.counter(
            "adaptations_total", action=outcome.action.value
        ).inc()
        self.log.append(outcome)
        return outcome

    # ------------------------------------------------------------------
    # global monitoring (§V.1.1 — the monitor's scope is the whole
    # composition, not just individual services)
    # ------------------------------------------------------------------
    def composition_runtime_qos(self):
        """The composition's aggregated QoS under run-time estimates.

        Every bound service's vector is the monitor's EWMA estimate where
        observations exist, its advertisement otherwise; aggregation follows
        the plan's pattern tree and approach.
        """
        from repro.composition.aggregation import aggregate_composition

        if self.plan is None:
            raise AdaptationError("no composition deployed")
        assignments = {
            name: self.monitor.estimated_vector(
                selection.primary.service_id,
                selection.primary.advertised_qos,
            )
            for name, selection in self.plan.selections.items()
        }
        relevant = {
            name: prop
            for name, prop in self.properties.items()
            if all(name in vector for vector in assignments.values())
        }
        return aggregate_composition(
            self.plan.task, assignments, relevant, self.plan.approach
        )

    def check_global(self) -> Dict[str, float]:
        """Violations of the *global* constraints under run-time estimates.

        Per-service watches are conservative (equal-share decomposition can
        flag a service whose overshoot another service's slack absorbs);
        this is the exact check.  Returns ``str(constraint) -> slack`` for
        violated constraints, empty when the composition still holds.
        """
        if self.plan is None:
            raise AdaptationError("no composition deployed")
        return self.plan.request.violations(self.composition_runtime_qos())

    def handle_global_violations(self) -> List[AdaptationOutcome]:
        """Run the global check and adapt the worst offender if it fails.

        The service contributing most to the most-violated property (by
        estimated value, direction-aware) is treated as the failing one and
        escalated through the usual strategies.
        """
        violations = self.check_global()
        if not violations or self.plan is None:
            return []
        worst_desc = min(violations, key=lambda k: violations[k])
        prop_name = worst_desc.split()[0]
        prop = self.properties.get(prop_name)
        if prop is None:
            return []
        contributions = []
        for name, selection in self.plan.selections.items():
            estimate = self.monitor.estimated_vector(
                selection.primary.service_id,
                selection.primary.advertised_qos,
            ).get(prop_name)
            if estimate is not None:
                contributions.append((estimate, selection.primary.service_id))
        if not contributions:
            return []
        worst_value = prop.direction.worst([c[0] for c in contributions])
        offender = next(
            sid for value, sid in contributions if value == worst_value
        )
        trigger = AdaptationTrigger(
            kind=TriggerKind.VIOLATION,
            service_id=offender,
            property_name=prop_name,
            observed=worst_value,
            projected=None,
            bound=None,
            timestamp=0.0,
        )
        return [self.handle(trigger)]

    # ------------------------------------------------------------------
    def _activity_of(self, service_id: str) -> str:
        assert self.plan is not None
        for name, selection in self.plan.selections.items():
            if selection.primary.service_id == service_id:
                return name
        raise AdaptationError(f"service {service_id!r} not bound in the plan")

    def _rewatch(self, service: ServiceDescription) -> None:
        assert self.plan is not None
        n = max(len(self.plan.selections), 1)
        bounds = []
        for constraint in self.plan.request.constraints:
            prop = self.properties.get(constraint.property_name)
            if prop is None:
                continue
            bounds.append(self._per_service_bound(constraint, prop, n))
        self.monitor.watch(service.service_id, bounds)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        """Counts per action kind (used by the ablation benchmarks)."""
        counts: Dict[str, int] = {}
        for outcome in self.log:
            counts[outcome.action.value] = counts.get(outcome.action.value, 0) + 1
        return counts
