"""Provider reputation from observed behaviour (the Trust QoS category).

The Service QoS ontology's ``sqos:Reputation`` is "the average user rating
of the provider" — but in an open pervasive environment nobody hands out
ratings; the middleware *is* the witness.  This module closes the loop:

* every invocation outcome (success / failure) and every SLA compliance
  check feeds a per-provider Beta-style score:
  ``(successes + prior_successes) / (total + prior_total)``, mapped to the
  ``reputation`` property's 0-5 scale;
* :meth:`ReputationManager.refresh_registry` republishes the providers'
  services with the updated reputation, so the *next* selection round
  naturally favours providers who delivered — no change to the selection
  algorithms required.

The Laplace-style prior keeps one bad observation from destroying a new
provider and one good one from canonising it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.qos.properties import QoSProperty, REPUTATION
from repro.services.registry import ServiceRegistry
from repro.execution.engine import ExecutionReport

#: Scale of the reputation property (matches REPUTATION.value_range).
REPUTATION_SCALE = 5.0


@dataclass
class ProviderRecord:
    """Evidence accumulated about one provider."""

    provider: str
    successes: int = 0
    failures: int = 0
    sla_violations: int = 0

    @property
    def observations(self) -> int:
        return self.successes + self.failures


class ReputationManager:
    """Evidence-based reputation scoring and registry refresh."""

    def __init__(
        self,
        registry: ServiceRegistry,
        prior_successes: float = 3.0,
        prior_total: float = 4.0,
        violation_weight: float = 1.0,
    ) -> None:
        if not 0 < prior_successes <= prior_total:
            raise ValueError("prior must satisfy 0 < successes <= total")
        self.registry = registry
        self.prior_successes = prior_successes
        self.prior_total = prior_total
        self.violation_weight = violation_weight
        self._records: Dict[str, ProviderRecord] = {}

    # ------------------------------------------------------------------
    def record_success(self, provider: str, count: int = 1) -> None:
        self._record(provider).successes += count

    def record_failure(self, provider: str, count: int = 1) -> None:
        self._record(provider).failures += count

    def record_sla_violation(self, provider: str, count: int = 1) -> None:
        self._record(provider).sla_violations += count

    def ingest_report(self, report: ExecutionReport) -> None:
        """Digest an execution trace: one success/failure per invocation.

        Providers are resolved through the registry; invocations of
        services that already left the environment still count against
        their provider if the id is known, and are skipped otherwise.
        """
        for record in report.invocations:
            service = self.registry.get(record.service_id)
            if service is None:
                continue
            if record.succeeded:
                self.record_success(service.provider)
            else:
                self.record_failure(service.provider)

    # ------------------------------------------------------------------
    def score(self, provider: str) -> float:
        """Current reputation of a provider on the 0-5 scale.

        Beta-mean with priors; SLA violations weigh in as fractional
        failures (an unreliable-but-up provider is still a bad citizen).
        """
        record = self._records.get(provider)
        if record is None:
            return (
                self.prior_successes / self.prior_total
            ) * REPUTATION_SCALE
        effective_failures = (
            record.failures + self.violation_weight * record.sla_violations
        )
        total = record.successes + effective_failures + self.prior_total
        positive = record.successes + self.prior_successes
        return max(0.0, min(1.0, positive / total)) * REPUTATION_SCALE

    def record_of(self, provider: str) -> Optional[ProviderRecord]:
        return self._records.get(provider)

    def providers(self) -> List[str]:
        return sorted(self._records)

    # ------------------------------------------------------------------
    def refresh_registry(self) -> int:
        """Republish every known provider's services with updated
        reputation; returns how many services were refreshed."""
        refreshed = 0
        for service in self.registry.services():
            if "reputation" not in service.advertised_qos:
                continue
            if service.provider not in self._records:
                continue
            new_score = self.score(service.provider)
            if abs(service.advertised_qos["reputation"] - new_score) < 1e-9:
                continue
            self.registry.publish(
                service.with_qos(
                    service.advertised_qos.replace("reputation", new_score)
                )
            )
            refreshed += 1
        return refreshed

    def _record(self, provider: str) -> ProviderRecord:
        record = self._records.get(provider)
        if record is None:
            record = ProviderRecord(provider)
            self._records[provider] = record
        return record
