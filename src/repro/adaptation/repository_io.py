"""Serialising the Task Class Repository (Fig. I.2 machinery).

The paper's repository stores *abstract descriptions of the tasks offered by
the pervasive environment* and "assists users in expressing their desired
tasks".  For a repository to outlive one middleware process it needs a wire
format; we reuse the abstract-BPEL dialect for the behaviours and wrap the
classes in a small XML bundle:

.. code-block:: xml

    <taskClassRepository>
      <taskClass name="shopping" description="Buy items...">
        <behaviour>
          <process name="shopping"> ... </process>
        </behaviour>
        ...
      </taskClass>
    </taskClassRepository>

``dump_repository`` / ``load_repository`` round-trip a repository;
``save_repository`` / ``read_repository`` add file I/O.  Behavioural graphs
are rebuilt from the tasks on load, so the bundle stays purely declarative.
"""

from __future__ import annotations

import pathlib
import xml.etree.ElementTree as ET
from typing import Optional, Union

from repro.errors import BpelParseError
from repro.adaptation.task_class import TaskClass, TaskClassRepository
from repro.execution.bpel import parse_bpel, to_bpel
from repro.semantics.ontology import Ontology


def dump_repository(repository: TaskClassRepository) -> str:
    """Serialise a repository to its XML bundle."""
    root = ET.Element("taskClassRepository")
    for task_class in repository:
        class_element = ET.SubElement(
            root, "taskClass",
            {"name": task_class.name, "description": task_class.description},
        )
        for behaviour in task_class:
            behaviour_element = ET.SubElement(class_element, "behaviour")
            behaviour_element.append(
                ET.fromstring(to_bpel(behaviour.task))
            )
    _indent(root)
    return ET.tostring(root, encoding="unicode")


def load_repository(
    document: str,
    ontology: Optional[Ontology] = None,
) -> TaskClassRepository:
    """Rebuild a repository from its XML bundle."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as error:
        raise BpelParseError(f"malformed repository bundle: {error}") from None
    if root.tag != "taskClassRepository":
        raise BpelParseError(
            f"root element must be <taskClassRepository>, got <{root.tag}>"
        )
    repository = TaskClassRepository(ontology)
    for class_element in root:
        if class_element.tag != "taskClass":
            raise BpelParseError(
                f"unexpected element <{class_element.tag}> in bundle"
            )
        name = class_element.get("name")
        if not name:
            raise BpelParseError("<taskClass> requires a name attribute")
        task_class = repository.new_class(
            name, class_element.get("description", "")
        )
        for behaviour_element in class_element:
            if behaviour_element.tag != "behaviour":
                raise BpelParseError(
                    f"unexpected element <{behaviour_element.tag}> in "
                    f"task class {name!r}"
                )
            processes = list(behaviour_element)
            if len(processes) != 1:
                raise BpelParseError(
                    f"<behaviour> in {name!r} must hold exactly one <process>"
                )
            task = parse_bpel(
                ET.tostring(processes[0], encoding="unicode")
            )
            task_class.add(task)
    return repository


def save_repository(
    repository: TaskClassRepository,
    path: Union[str, pathlib.Path],
) -> pathlib.Path:
    """Write the bundle to disk; returns the resolved path."""
    target = pathlib.Path(path)
    target.write_text(dump_repository(repository))
    return target


def read_repository(
    path: Union[str, pathlib.Path],
    ontology: Optional[Ontology] = None,
) -> TaskClassRepository:
    """Load a bundle from disk."""
    return load_repository(pathlib.Path(path).read_text(), ontology)


def _indent(element: ET.Element, level: int = 0) -> None:
    pad = "\n" + "  " * level
    if len(element):
        if not element.text or not element.text.strip():
            element.text = pad + "  "
        for child in element:
            _indent(child, level + 1)
            if not child.tail or not child.tail.strip():
                child.tail = pad + "  "
        last = element[-1]
        if not last.tail or not last.tail.strip():
            last.tail = pad
    elif level and (not element.tail or not element.tail.strip()):
        element.tail = pad
