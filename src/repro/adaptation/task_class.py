"""The task class concept and its repository (§V.5).

A **task class** groups *equivalent behaviours*: alternative compositions of
abstract activities that fulfil the same user task — differing in activity
order, granularity (split/merged activities) or coordination patterns.  The
middleware's Task Class Repository stores these behaviours; behavioural
adaptation searches it for an alternative into which the (failing) user
behaviour maps homeomorphically.

Formally (§V.5.2) a task class ``TC = (G, ~)`` is a set of behavioural
graphs pairwise related by the extended homeomorphism relation; here we
store the graphs and let :mod:`repro.adaptation.homeomorphism` decide
relatedness on demand (the repository may also verify closure eagerly via
:meth:`TaskClass.verify_equivalence`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import BehaviouralAdaptationError
from repro.adaptation.behaviour_graph import BehaviouralGraph, task_to_graph
from repro.adaptation.homeomorphism import (
    HomeomorphismConfig,
    HomeomorphismResult,
    find_homeomorphism,
)
from repro.composition.task import Task
from repro.semantics.ontology import Ontology


@dataclass
class Behaviour:
    """One alternative realisation of a task: the task tree + its graph."""

    name: str
    task: Task
    graph: BehaviouralGraph

    @classmethod
    def from_task(cls, task: Task, name: Optional[str] = None) -> "Behaviour":
        return cls(name=name or task.name, task=task, graph=task_to_graph(task))


class TaskClass:
    """A named set of equivalent behaviours for one user task."""

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._behaviours: Dict[str, Behaviour] = {}

    def __len__(self) -> int:
        return len(self._behaviours)

    def __iter__(self) -> Iterator[Behaviour]:
        return iter(self._behaviours.values())

    def add(self, behaviour: Union[Behaviour, Task]) -> Behaviour:
        if isinstance(behaviour, Task):
            behaviour = Behaviour.from_task(behaviour)
        if behaviour.name in self._behaviours:
            raise BehaviouralAdaptationError(
                f"task class {self.name!r} already has behaviour "
                f"{behaviour.name!r}"
            )
        self._behaviours[behaviour.name] = behaviour
        return behaviour

    def behaviour(self, name: str) -> Behaviour:
        try:
            return self._behaviours[name]
        except KeyError:
            raise BehaviouralAdaptationError(
                f"task class {self.name!r} has no behaviour {name!r}"
            ) from None

    def behaviours(self) -> List[Behaviour]:
        return list(self._behaviours.values())

    def alternatives_to(self, behaviour_name: str) -> List[Behaviour]:
        return [b for b in self._behaviours.values() if b.name != behaviour_name]

    def verify_equivalence(
        self,
        ontology: Optional[Ontology] = None,
        config: HomeomorphismConfig = HomeomorphismConfig(),
    ) -> Dict[Tuple[str, str], bool]:
        """Check pairwise homeomorphic embeddability between behaviours.

        Returns a map ``(pattern name, host name) -> found``.  A curated
        repository is expected to be fully related; the method exists so
        repository authors can audit their classes.
        """
        results: Dict[Tuple[str, str], bool] = {}
        names = list(self._behaviours)
        for a in names:
            for b in names:
                if a == b:
                    continue
                outcome = find_homeomorphism(
                    self._behaviours[a].graph,
                    self._behaviours[b].graph,
                    ontology,
                    config,
                )
                results[(a, b)] = outcome.found
        return results


class TaskClassRepository:
    """The middleware's store of task classes (Fig. I.2).

    Lookup is by class name or by *membership*: given a user task, find the
    classes containing a behaviour into which the task's graph embeds.
    """

    def __init__(self, ontology: Optional[Ontology] = None) -> None:
        self.ontology = ontology
        self._classes: Dict[str, TaskClass] = {}

    def __len__(self) -> int:
        return len(self._classes)

    def __iter__(self) -> Iterator[TaskClass]:
        return iter(self._classes.values())

    def add(self, task_class: TaskClass) -> TaskClass:
        if task_class.name in self._classes:
            raise BehaviouralAdaptationError(
                f"task class {task_class.name!r} already registered"
            )
        self._classes[task_class.name] = task_class
        return task_class

    def new_class(self, name: str, description: str = "") -> TaskClass:
        return self.add(TaskClass(name, description))

    def get(self, name: str) -> Optional[TaskClass]:
        return self._classes.get(name)

    def require(self, name: str) -> TaskClass:
        task_class = self._classes.get(name)
        if task_class is None:
            raise BehaviouralAdaptationError(f"unknown task class {name!r}")
        return task_class

    def classes_for(
        self,
        task: Task,
        config: HomeomorphismConfig = HomeomorphismConfig(),
    ) -> List[Tuple[TaskClass, Behaviour, HomeomorphismResult]]:
        """Task classes holding a behaviour that can realise ``task``.

        For each class, the first behaviour into which the task's graph
        embeds homeomorphically is returned along with the mapping evidence.
        """
        pattern = task_to_graph(task)
        hits: List[Tuple[TaskClass, Behaviour, HomeomorphismResult]] = []
        for task_class in self._classes.values():
            for behaviour in task_class:
                outcome = find_homeomorphism(
                    pattern, behaviour.graph, self.ontology, config
                )
                if outcome.found:
                    hits.append((task_class, behaviour, outcome))
                    break
        return hits
