"""Service substitution — the first adaptation strategy (§V.1.2).

When a service in a running composition under-delivers (or dies), the
cheapest repair replaces it with another service of the same activity.
QASSA deliberately selected *several* services per activity, so the first
substitution candidates are the pre-selected alternates — no new discovery
round is needed.  If none of them keeps the composition feasible, the
activity's full (fresh) candidate set can be searched; only when that also
fails does behavioural adaptation take over.

The substitution decision re-aggregates the composition's QoS with the
monitor's *run-time estimates* for the surviving services (not their
advertised values), which is what makes the repair trustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import SubstitutionError
from repro.qos.properties import QoSProperty
from repro.qos.values import QoSVector
from repro.services.description import ServiceDescription
from repro.composition.aggregation import aggregate_composition
from repro.composition.selection import CompositionPlan
from repro.composition.selection_cache import SelectionCache
from repro.adaptation.monitoring import QoSMonitor


@dataclass
class SubstitutionResult:
    """Outcome of one substitution attempt."""

    activity_name: str
    removed: ServiceDescription
    replacement: ServiceDescription
    aggregated_qos: QoSVector
    used_fresh_candidates: bool


class ServiceSubstitution:
    """Replaces one composition member while preserving global feasibility."""

    def __init__(
        self,
        properties: Mapping[str, QoSProperty],
        monitor: Optional[QoSMonitor] = None,
        selection_cache: Optional[SelectionCache] = None,
    ) -> None:
        self.properties = dict(properties)
        self.monitor = monitor
        #: When the selector shared its :class:`SelectionCache`, fresh
        #: candidates are ranked by the cached per-activity normaliser and
        #: the last run's weights before being tried — the best substitute
        #: by the *user's* utility is attempted first instead of whatever
        #: order discovery returned.
        self.selection_cache = selection_cache

    # ------------------------------------------------------------------
    def substitute(
        self,
        plan: CompositionPlan,
        failing_service_id: str,
        fresh_candidates: Optional[Sequence[ServiceDescription]] = None,
    ) -> SubstitutionResult:
        """Replace the failing service in ``plan`` (mutating the plan).

        Candidates are tried in order: the plan's pre-selected alternates,
        then ``fresh_candidates`` (e.g. a new discovery round).  The first
        candidate keeping the request's global constraints satisfied — under
        run-time QoS estimates — wins.  Raises :class:`SubstitutionError`
        when none does.
        """
        activity_name = self._activity_of(plan, failing_service_id)
        selection = plan.selections[activity_name]
        removed = selection.primary

        tried: List[ServiceDescription] = list(selection.alternates)
        fresh: List[ServiceDescription] = [
            s
            for s in (fresh_candidates or ())
            if s.service_id != failing_service_id
            and all(s != existing for existing in tried)
        ]
        if self.selection_cache is not None and fresh:
            ranked = self.selection_cache.rank_candidates(activity_name, fresh)
            if ranked is not None:
                fresh = ranked

        for pool, is_fresh in ((tried, False), (fresh, True)):
            for candidate in pool:
                if candidate.service_id == failing_service_id:
                    continue
                aggregated = self._aggregate_with(plan, activity_name, candidate)
                if plan.request.satisfied_by(aggregated):
                    self._apply(plan, activity_name, candidate, aggregated)
                    return SubstitutionResult(
                        activity_name=activity_name,
                        removed=removed,
                        replacement=candidate,
                        aggregated_qos=aggregated,
                        used_fresh_candidates=is_fresh,
                    )
        raise SubstitutionError(
            f"no substitute for service {failing_service_id!r} "
            f"(activity {activity_name!r}) keeps the composition feasible"
        )

    # ------------------------------------------------------------------
    def _activity_of(self, plan: CompositionPlan, service_id: str) -> str:
        for name, selection in plan.selections.items():
            if selection.primary.service_id == service_id:
                return name
        raise SubstitutionError(
            f"service {service_id!r} is not bound in the composition"
        )

    def _runtime_qos(self, service: ServiceDescription) -> QoSVector:
        if self.monitor is None:
            return service.advertised_qos
        return self.monitor.estimated_vector(
            service.service_id, service.advertised_qos
        )

    def _aggregate_with(
        self,
        plan: CompositionPlan,
        activity_name: str,
        candidate: ServiceDescription,
    ) -> QoSVector:
        assignments: Dict[str, QoSVector] = {}
        for name, selection in plan.selections.items():
            if name == activity_name:
                # The incoming service has no run-time history with us yet;
                # its advertised QoS is the best information available.
                assignments[name] = candidate.advertised_qos
            else:
                assignments[name] = self._runtime_qos(selection.primary)
        relevant = {
            n: p for n, p in self.properties.items()
            if all(n in v for v in assignments.values())
        }
        return aggregate_composition(
            plan.task, assignments, relevant, plan.approach
        )

    def _apply(
        self,
        plan: CompositionPlan,
        activity_name: str,
        candidate: ServiceDescription,
        aggregated: QoSVector,
    ) -> None:
        selection = plan.selections[activity_name]
        remaining = [
            s for s in selection.services
            if s != candidate and s != selection.primary
        ]
        selection.services = [candidate] + remaining
        plan.aggregated_qos = aggregated
        plan.feasible = True
