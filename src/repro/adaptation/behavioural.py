"""Behavioural adaptation — the second adaptation strategy (§V.3).

When substitution cannot repair a composition (no alternates, the whole
environment degraded, a capability vanished), the task itself is re-realised
through an **alternative behaviour** from its task class:

1. the (failing) user task is transformed into its behavioural graph;
2. the task class repository is searched for an alternative behaviour into
   which the user's graph embeds under the extended vertex-disjoint subgraph
   homeomorphism (semantic labels, data constraints, splits);
3. for each admissible alternative (ordered by embedding cost — fewer extra
   activities first), QoS-aware selection runs again on the alternative's
   activities;
4. the first alternative yielding a feasible composition wins.

The homeomorphism direction matters: the *user task* is the pattern and the
*alternative behaviour* is the host — the alternative may refine activities
(splits) or interleave extra ones, but must cover everything the user asked
for, in a compatible order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional, Tuple

from repro.errors import BehaviouralAdaptationError, CompositionError, SelectionError
from repro.qos.properties import QoSProperty
from repro.adaptation.behaviour_graph import task_to_graph
from repro.adaptation.homeomorphism import (
    HomeomorphismConfig,
    HomeomorphismResult,
    find_homeomorphism,
)
from repro.adaptation.task_class import Behaviour, TaskClass, TaskClassRepository
from repro.composition.request import UserRequest
from repro.composition.selection import CandidateSets, CompositionPlan
from repro.composition.task import Task
from repro.semantics.matching import MatchCache
from repro.semantics.ontology import Ontology

#: Resolves an alternative behaviour's activities to candidate services.
#: Signature: (task) -> CandidateSets.  Usually wraps discovery + registry.
CandidateResolver = Callable[[Task], CandidateSets]

#: Runs QoS-aware selection.  Signature: (request, candidates) -> plan.
Selector = Callable[[UserRequest, CandidateSets], CompositionPlan]


@dataclass
class BehaviouralAdaptationResult:
    """Outcome: which alternative was adopted and its new composition."""

    task_class: TaskClass
    behaviour: Behaviour
    embedding: HomeomorphismResult
    plan: CompositionPlan
    alternatives_tried: int


class BehaviouralAdaptation:
    """The behavioural adaptation strategy (Fig. V.2)."""

    def __init__(
        self,
        repository: TaskClassRepository,
        resolver: CandidateResolver,
        selector: Selector,
        ontology: Optional[Ontology] = None,
        config: HomeomorphismConfig = HomeomorphismConfig(),
    ) -> None:
        self.repository = repository
        self.resolver = resolver
        self.selector = selector
        self.ontology = ontology if ontology is not None else repository.ontology
        self.config = config
        # One memoised grading shared by every repository scan: behaviours
        # of the same task class reuse the same vertex labels, so the
        # second and later embeddings hit the cache almost exclusively.
        self.match_cache: Optional[MatchCache] = (
            MatchCache(self.ontology) if self.ontology is not None else None
        )

    # ------------------------------------------------------------------
    def candidate_behaviours(
        self, task: Task, task_class_name: Optional[str] = None
    ) -> List[Tuple[TaskClass, Behaviour, HomeomorphismResult]]:
        """Alternative behaviours admitting the task, cheapest embedding
        first (fewest host vertices beyond the pattern's needs)."""
        pattern = task_to_graph(task)
        scope: List[TaskClass]
        if task_class_name is not None:
            scope = [self.repository.require(task_class_name)]
        else:
            scope = list(self.repository)

        hits: List[Tuple[TaskClass, Behaviour, HomeomorphismResult]] = []
        for task_class in scope:
            for behaviour in task_class:
                if behaviour.task.name == task.name:
                    continue  # the failing behaviour itself
                outcome = find_homeomorphism(
                    pattern, behaviour.graph, self.ontology, self.config,
                    match_cache=self.match_cache,
                )
                if outcome.found:
                    hits.append((task_class, behaviour, outcome))
        hits.sort(key=lambda hit: hit[1].graph.vertex_count())
        return hits

    def adapt(
        self,
        request: UserRequest,
        task_class_name: Optional[str] = None,
    ) -> BehaviouralAdaptationResult:
        """Re-fulfil ``request.task`` through an alternative behaviour.

        Raises :class:`BehaviouralAdaptationError` when no alternative both
        embeds the task and yields a feasible composition.
        """
        alternatives = self.candidate_behaviours(request.task, task_class_name)
        if not alternatives:
            raise BehaviouralAdaptationError(
                f"no alternative behaviour for task {request.task.name!r} "
                "in the repository"
            )

        tried = 0
        last_error: Optional[Exception] = None
        for task_class, behaviour, embedding in alternatives:
            tried += 1
            alternative_request = UserRequest(
                task=behaviour.task,
                constraints=request.constraints,
                weights=request.weights,
            )
            try:
                candidates = self.resolver(behaviour.task)
                plan = self.selector(alternative_request, candidates)
            except CompositionError as error:
                last_error = error
                continue
            if plan.feasible:
                return BehaviouralAdaptationResult(
                    task_class=task_class,
                    behaviour=behaviour,
                    embedding=embedding,
                    plan=plan,
                    alternatives_tried=tried,
                )
        raise BehaviouralAdaptationError(
            f"none of the {tried} alternative behaviours yields a feasible "
            f"composition (last selection error: {last_error})"
        )
