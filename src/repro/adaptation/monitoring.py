"""Global and proactive QoS monitoring (§V.1.1).

The monitor watches the run-time QoS of every service taking part in a
running composition (*global* scope — not just the next service to invoke)
and raises adaptation triggers **proactively**: an exponentially weighted
moving average (EWMA) forecasts each property's short-term trajectory, so a
drifting service is flagged *before* it actually breaches the user's
constraints.

Observations are pushed by the execution engine (or the environment
simulator); the monitor keeps per-(service, property) series, maintains
EWMA estimates, and evaluates two kinds of rules:

* **violation** — the observed value already breaches a bound;
* **forecast** — the EWMA-projected value breaches a bound while the
  observed one does not yet (the proactive case, ablated in
  ``benchmarks/bench_ablation_monitoring.py``).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Mapping, Optional, Tuple

from repro.errors import AdaptationError
from repro.observability import core as observability_core
from repro.qos.properties import Direction, QoSProperty
from repro.qos.values import QoSVector
from repro.services.discovery import QoSConstraint


class TriggerKind(enum.Enum):
    """Why the monitor raised an adaptation trigger."""

    VIOLATION = "violation"     # bound already breached
    FORECAST = "forecast"       # the forecaster projects a breach
    FAILURE = "failure"         # service stopped responding


class ForecastMethod(enum.Enum):
    """How the proactive projection is computed.

    EWMA_TREND is the paper-era default (Holt-style smoothed level + drift).
    LINEAR fits a least-squares line over the observation window and
    extrapolates ``horizon`` steps ahead — the "more accurate QoS
    prediction" direction of the thesis' perspectives chapter.
    """

    EWMA_TREND = "ewma_trend"
    LINEAR = "linear"


@dataclass(frozen=True)
class QoSObservation:
    """One run-time measurement of one service's QoS property."""

    service_id: str
    property_name: str
    value: float
    timestamp: float


@dataclass(frozen=True)
class AdaptationTrigger:
    """What the monitor hands to the adaptation manager."""

    kind: TriggerKind
    service_id: str
    property_name: str
    observed: Optional[float]
    projected: Optional[float]
    bound: Optional[float]
    timestamp: float


@dataclass(frozen=True)
class MonitorConfig:
    """EWMA smoothing and window parameters.

    ``alpha`` close to 1 tracks raw observations; close to 0 smooths hard.
    ``trend_gain`` amplifies the recent drift when projecting forward
    (a Holt-style one-step-ahead forecast).
    """

    alpha: float = 0.3
    trend_gain: float = 2.0
    window: int = 20
    min_samples_for_forecast: int = 3
    method: ForecastMethod = ForecastMethod.EWMA_TREND
    horizon: float = 2.0   # steps ahead for the LINEAR method


@dataclass
class _Series:
    values: Deque[float]
    ewma: Optional[float] = None
    previous_ewma: Optional[float] = None

    def push(self, value: float, alpha: float) -> None:
        self.values.append(value)
        if self.ewma is None:
            self.ewma = value
            self.previous_ewma = value
        else:
            self.previous_ewma = self.ewma
            self.ewma = alpha * value + (1 - alpha) * self.ewma

    def trend(self) -> float:
        if self.ewma is None or self.previous_ewma is None:
            return 0.0
        return self.ewma - self.previous_ewma


class QoSMonitor:
    """Per-service, per-property run-time QoS tracking with forecasting."""

    def __init__(
        self,
        properties: Mapping[str, QoSProperty],
        config: MonitorConfig = MonitorConfig(),
        observability=None,
    ) -> None:
        if not 0 < config.alpha <= 1:
            raise AdaptationError("EWMA alpha must be in (0, 1]")
        self.properties = dict(properties)
        self.config = config
        self.obs = observability_core.resolve(observability)
        self._series: Dict[Tuple[str, str], _Series] = {}
        self._watches: Dict[str, List[QoSConstraint]] = {}
        self._listeners: List[Callable[[AdaptationTrigger], None]] = []
        self._failed: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def watch(self, service_id: str, constraints: List[QoSConstraint]) -> None:
        """Attach per-service bounds derived from the user's requirements.

        The adaptation framework decomposes global constraints into
        per-service watch bounds (see
        :meth:`repro.adaptation.manager.AdaptationManager.deploy`).
        """
        self._watches[service_id] = list(constraints)

    def unwatch(self, service_id: str) -> None:
        self._watches.pop(service_id, None)
        self._failed.pop(service_id, None)
        stale = [key for key in self._series if key[0] == service_id]
        for key in stale:
            del self._series[key]

    def subscribe(
        self, listener: Callable[[AdaptationTrigger], None]
    ) -> Callable[[], None]:
        """Register a trigger listener; returns an unsubscribe callable."""
        self._listeners.append(listener)

        def unsubscribe() -> None:
            if listener in self._listeners:
                self._listeners.remove(listener)

        return unsubscribe

    # ------------------------------------------------------------------
    def observe(self, observation: QoSObservation) -> List[AdaptationTrigger]:
        """Ingest one measurement; returns (and dispatches) any triggers."""
        key = (observation.service_id, observation.property_name)
        series = self._series.get(key)
        if series is None:
            series = _Series(values=deque(maxlen=self.config.window))
            self._series[key] = series
        series.push(observation.value, self.config.alpha)

        triggers = self._evaluate(observation, series)
        if self.obs.enabled:
            self.obs.counter("monitor_observations_total").inc()
            for trigger in triggers:
                self.obs.counter(
                    "monitor_triggers_total", kind=trigger.kind.value
                ).inc()
        for trigger in triggers:
            self._dispatch(trigger)
        return triggers

    def observe_vector(
        self, service_id: str, vector: QoSVector, timestamp: float
    ) -> List[AdaptationTrigger]:
        triggers: List[AdaptationTrigger] = []
        for name, value in vector.items():
            triggers.extend(
                self.observe(QoSObservation(service_id, name, value, timestamp))
            )
        return triggers

    def report_failure(self, service_id: str, timestamp: float) -> AdaptationTrigger:
        """The execution engine reports an outright invocation failure."""
        self._failed[service_id] = timestamp
        if self.obs.enabled:
            self.obs.counter(
                "monitor_triggers_total", kind=TriggerKind.FAILURE.value
            ).inc()
        trigger = AdaptationTrigger(
            kind=TriggerKind.FAILURE,
            service_id=service_id,
            property_name="availability",
            observed=0.0,
            projected=None,
            bound=None,
            timestamp=timestamp,
        )
        self._dispatch(trigger)
        return trigger

    # ------------------------------------------------------------------
    def estimate(self, service_id: str, property_name: str) -> Optional[float]:
        """Current EWMA estimate of a service's property, if observed."""
        series = self._series.get((service_id, property_name))
        return series.ewma if series is not None else None

    def estimated_vector(
        self, service_id: str, fallback: QoSVector
    ) -> QoSVector:
        """The service's run-time QoS estimate, falling back to advertised
        values for properties never observed."""
        values = {}
        for name in fallback:
            estimate = self.estimate(service_id, name)
            values[name] = estimate if estimate is not None else fallback[name]
        return QoSVector(values, fallback.properties())

    def projected(self, service_id: str, property_name: str) -> Optional[float]:
        """Short-horizon forecast under the configured method."""
        series = self._series.get((service_id, property_name))
        if series is None or series.ewma is None:
            return None
        if len(series.values) < self.config.min_samples_for_forecast:
            return None
        if self.config.method is ForecastMethod.LINEAR:
            return self._linear_projection(series)
        return series.ewma + self.config.trend_gain * series.trend()

    def _linear_projection(self, series: _Series) -> float:
        """Least-squares extrapolation ``horizon`` steps past the window."""
        values = list(series.values)
        n = len(values)
        xs = range(n)
        mean_x = (n - 1) / 2.0
        mean_y = sum(values) / n
        denominator = sum((x - mean_x) ** 2 for x in xs)
        if denominator == 0:
            return values[-1]
        slope = sum(
            (x - mean_x) * (y - mean_y) for x, y in zip(xs, values)
        ) / denominator
        intercept = mean_y - slope * mean_x
        return intercept + slope * (n - 1 + self.config.horizon)

    # ------------------------------------------------------------------
    def _evaluate(
        self, observation: QoSObservation, series: _Series
    ) -> List[AdaptationTrigger]:
        constraints = self._watches.get(observation.service_id, ())
        triggers: List[AdaptationTrigger] = []
        for constraint in constraints:
            if constraint.property_name != observation.property_name:
                continue
            if not constraint.satisfied_by(observation.value):
                triggers.append(
                    AdaptationTrigger(
                        kind=TriggerKind.VIOLATION,
                        service_id=observation.service_id,
                        property_name=observation.property_name,
                        observed=observation.value,
                        projected=None,
                        bound=constraint.bound,
                        timestamp=observation.timestamp,
                    )
                )
                continue
            forecast = self.projected(
                observation.service_id, observation.property_name
            )
            if forecast is not None and not constraint.satisfied_by(forecast):
                triggers.append(
                    AdaptationTrigger(
                        kind=TriggerKind.FORECAST,
                        service_id=observation.service_id,
                        property_name=observation.property_name,
                        observed=observation.value,
                        projected=forecast,
                        bound=constraint.bound,
                        timestamp=observation.timestamp,
                    )
                )
        return triggers

    def _dispatch(self, trigger: AdaptationTrigger) -> None:
        for listener in list(self._listeners):
            listener(trigger)
