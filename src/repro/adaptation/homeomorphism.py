"""Extended vertex-disjoint subgraph homeomorphism determination (§V.6).

Behavioural adaptation asks: *can the user's behavioural graph be found
inside an alternative behaviour from the task class?*  The paper reduces
this to subgraph homeomorphism with three extensions:

1. **Semantic vertex matching** (§6.2.1) — a pattern vertex may map to a
   host vertex whose capability label semantically satisfies it (EXACT or
   PLUGIN under the task ontology), not only to an identical label.
2. **Data constraints** (§6.2.2) — the mapped vertex must produce the
   outputs the pattern vertex promises and must not require inputs the
   pattern cannot provide.
3. **Particular vertex mappings** (§6.2.3) — one pattern vertex may map to
   a *chain* of host vertices (activity splitting: the alternative
   behaviour realises one coarse activity as several finer ones).

The determination itself is a most-constrained-first backtracking search:
pattern vertices are assigned images in increasing candidate-count order;
every pattern edge between mapped vertices must be realised by a directed
host path whose interior vertices are disjoint from every other image and
path interior (vertex-disjointness).  Preliminary verifications (§6.1)
reject hopeless pairs before the search starts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.adaptation.behaviour_graph import BehaviouralGraph, Vertex
from repro.semantics.matching import MatchCache, MatchDegree, match_concepts
from repro.semantics.ontology import Ontology


@dataclass(frozen=True)
class HomeomorphismConfig:
    """Tuning of the determination procedure."""

    minimum_degree: MatchDegree = MatchDegree.PLUGIN
    allow_splits: bool = True
    max_split_length: int = 3
    check_data: bool = True
    max_backtrack_steps: int = 200_000


@dataclass
class PreliminaryReport:
    """Outcome of the §6.1 pre-checks."""

    vertex_count_ok: bool = True
    all_vertices_have_candidates: bool = True
    unmatchable_vertices: List[str] = field(default_factory=list)
    candidate_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return self.vertex_count_ok and self.all_vertices_have_candidates


@dataclass
class HomeomorphismResult:
    """The determination outcome.

    ``vertex_mapping`` maps each pattern vertex id to the *chain* of host
    vertex ids realising it (length 1 for plain mappings, >1 for splits).
    ``edge_paths`` maps each pattern edge to the host path (inclusive of
    endpoints) realising it.
    """

    found: bool
    vertex_mapping: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    edge_paths: Dict[Tuple[str, str], List[str]] = field(default_factory=dict)
    preliminary: PreliminaryReport = field(default_factory=PreliminaryReport)
    backtrack_steps: int = 0
    elapsed_seconds: float = 0.0


class _Matcher:
    def __init__(
        self,
        pattern: BehaviouralGraph,
        host: BehaviouralGraph,
        ontology: Optional[Ontology],
        config: HomeomorphismConfig,
        match_cache: Optional["MatchCache"] = None,
    ) -> None:
        self.pattern = pattern
        self.host = host
        self.ontology = ontology
        self.config = config
        # Vertex labels repeat across candidate chains and backtracking
        # steps; memoising the grading pays even within a single search,
        # and a caller-supplied cache carries it across searches.
        self.match_cache: Optional[MatchCache] = None
        if ontology is not None:
            self.match_cache = (
                match_cache if match_cache is not None else MatchCache(ontology)
            )
        self.steps = 0

    # ------------------------------------------------------------------
    # semantic + data matching
    # ------------------------------------------------------------------
    def _label_degree(self, required: str, offered: str) -> MatchDegree:
        if self.ontology is None or not (
            self.ontology.is_class(required) and self.ontology.is_class(offered)
        ):
            return MatchDegree.EXACT if required == offered else MatchDegree.FAIL
        assert self.match_cache is not None
        return self.match_cache.match(required, offered)

    def _concept_covered(self, required: str, offered: FrozenSet[str]) -> bool:
        return any(
            self._label_degree(required, o) >= self.config.minimum_degree
            for o in offered
        )

    def _data_compatible(
        self, pattern_vertex: Vertex, chain: Sequence[Vertex]
    ) -> bool:
        """Data constraints (§6.2.2) between a pattern vertex and its image.

        * every output the pattern vertex promises must be produced by some
          vertex of the image chain;
        * every input a chain vertex requires must be provided by the
          pattern vertex (when the pattern declares inputs at all — an
          empty declaration means "unconstrained").
        """
        if not self.config.check_data:
            return True
        chain_outputs: FrozenSet[str] = frozenset().union(
            *(v.outputs for v in chain)
        ) if chain else frozenset()
        for required in pattern_vertex.outputs:
            if not self._concept_covered(required, chain_outputs):
                return False
        if pattern_vertex.inputs:
            for image in chain:
                for needed in image.inputs:
                    if not self._concept_covered(needed, pattern_vertex.inputs):
                        return False
        return True

    # ------------------------------------------------------------------
    # candidate image enumeration
    # ------------------------------------------------------------------
    def candidates(self, pattern_vertex: Vertex) -> List[Tuple[str, ...]]:
        """All admissible image chains for one pattern vertex.

        Plain single-vertex images first (cheapest), then split chains of
        increasing length whose every vertex's label is subsumed by the
        pattern label (§6.2.3: splitting a coarse activity into finer ones).
        """
        single: List[Tuple[str, ...]] = []
        for host_vertex in self.host.vertices():
            degree = self._label_degree(pattern_vertex.label, host_vertex.label)
            if degree < self.config.minimum_degree:
                continue
            if self._data_compatible(pattern_vertex, [host_vertex]):
                single.append((host_vertex.vertex_id,))

        if not self.config.allow_splits or self.config.max_split_length < 2:
            return single

        chains: List[Tuple[str, ...]] = []
        plugin_vertices = {
            v.vertex_id
            for v in self.host.vertices()
            if self._label_degree(pattern_vertex.label, v.label)
            >= self.config.minimum_degree
        }

        def extend(chain: List[str]) -> None:
            if len(chain) >= 2:
                vertices = [self.host.vertex(v) for v in chain]
                if self._data_compatible(pattern_vertex, vertices):
                    chains.append(tuple(chain))
            if len(chain) >= self.config.max_split_length:
                return
            for succ in sorted(self.host.successors(chain[-1])):
                if succ in plugin_vertices and succ not in chain:
                    extend(chain + [succ])

        for start in sorted(plugin_vertices):
            extend([start])
        return single + chains

    # ------------------------------------------------------------------
    # preliminary verifications (§6.1)
    # ------------------------------------------------------------------
    def preliminary(self) -> Tuple[PreliminaryReport, Dict[str, List[Tuple[str, ...]]]]:
        report = PreliminaryReport()
        if self.pattern.vertex_count() > self.host.vertex_count() * max(
            1, self.config.max_split_length
        ):
            report.vertex_count_ok = False
        candidate_map: Dict[str, List[Tuple[str, ...]]] = {}
        for vertex in self.pattern.vertices():
            options = self.candidates(vertex)
            candidate_map[vertex.vertex_id] = options
            report.candidate_counts[vertex.vertex_id] = len(options)
            if not options:
                report.all_vertices_have_candidates = False
                report.unmatchable_vertices.append(vertex.vertex_id)
        return report, candidate_map

    # ------------------------------------------------------------------
    # backtracking search
    # ------------------------------------------------------------------
    def _exclusive(self, pattern_a: str, pattern_b: str) -> bool:
        """Mutual exclusion between two pattern vertices (different branches
        of the same conditional — §V.6.2.3 merge mappings rest on this)."""
        return self.pattern.vertex(pattern_a).mutually_exclusive_with(
            self.pattern.vertex(pattern_b)
        )

    def search(
        self, candidate_map: Dict[str, List[Tuple[str, ...]]]
    ) -> Optional[Tuple[Dict[str, Tuple[str, ...]], Dict[Tuple[str, str], List[str]]]]:
        order = sorted(
            self.pattern.vertex_ids(), key=lambda v: len(candidate_map[v])
        )
        mapping: Dict[str, Tuple[str, ...]] = {}
        # host vertex id -> list of *owners* occupying it.  An owner is the
        # frozen set of pattern vertices whose execution the occupation
        # depends on: {v} for vertex v's image, {a, b} for the interior of
        # the path realising pattern edge (a, b).  Two owners may share a
        # host vertex iff they are *mutually exclusive* — some pair of their
        # pattern vertices sits in different branches of one conditional, so
        # at run time at most one occupation is live.  This realises the
        # merge-style particular vertex mappings of §V.6.2.3 while keeping
        # strict vertex-disjointness for everything that can co-execute.
        owners: Dict[str, List[FrozenSet[str]]] = {}
        paths: Dict[Tuple[str, str], List[str]] = {}

        def owners_exclusive(a: FrozenSet[str], b: FrozenSet[str]) -> bool:
            return any(
                self._exclusive(p, q) for p in a for q in b
            )

        def compatible(host_vertex: str, incoming: FrozenSet[str]) -> bool:
            return all(
                existing == incoming or owners_exclusive(existing, incoming)
                for existing in owners.get(host_vertex, ())
            )

        def occupy(host_vertices, owner: FrozenSet[str]) -> None:
            for hv in host_vertices:
                owners.setdefault(hv, []).append(owner)

        def release(host_vertices, owner: FrozenSet[str]) -> None:
            for hv in host_vertices:
                current = owners.get(hv)
                if current is None:
                    continue
                current.remove(owner)
                if not current:
                    del owners[hv]

        def try_connect(pattern_vertex: str) -> Optional[List[Tuple[Tuple[str, str], List[str]]]]:
            """Find host paths for every pattern edge between
            ``pattern_vertex`` and already-mapped neighbours.  Interiors are
            occupied incrementally so the exclusivity rule also governs
            sharing between this vertex's own edges."""
            new_paths: List[Tuple[Tuple[str, str], List[str]]] = []
            for p in (
                [(o, pattern_vertex) for o in self.pattern.predecessors(pattern_vertex) if o in mapping]
                + [(pattern_vertex, o) for o in self.pattern.successors(pattern_vertex) if o in mapping]
            ):
                source_pattern, target_pattern = p
                edge_owner = frozenset(p)
                blocked = {
                    hv for hv in owners if not compatible(hv, edge_owner)
                }
                source_host = mapping[source_pattern][-1]
                target_host = mapping[target_pattern][0]
                path = self.host.find_path(source_host, target_host, blocked)
                if path is None:
                    for key, done in new_paths:
                        release(done[1:-1], frozenset(key))
                    return None
                occupy(path[1:-1], edge_owner)
                new_paths.append((p, path))
            return new_paths

        def backtrack(index: int) -> bool:
            if index == len(order):
                return True
            self.steps += 1
            if self.steps > self.config.max_backtrack_steps:
                return False
            pattern_vertex = order[index]
            vertex_owner = frozenset({pattern_vertex})
            for chain in candidate_map[pattern_vertex]:
                if not all(compatible(hv, vertex_owner) for hv in chain):
                    continue
                mapping[pattern_vertex] = chain
                occupy(chain, vertex_owner)
                connections = try_connect(pattern_vertex)
                if connections is not None:
                    for key, path in connections:
                        paths[key] = path
                    if backtrack(index + 1):
                        return True
                    for key, path in connections:
                        release(path[1:-1], frozenset(key))
                        del paths[key]
                release(chain, vertex_owner)
                del mapping[pattern_vertex]
            return False

        if backtrack(0):
            return mapping, paths
        return None


def verify_embedding(
    pattern: BehaviouralGraph,
    host: BehaviouralGraph,
    result: HomeomorphismResult,
    ontology: Optional[Ontology] = None,
    config: HomeomorphismConfig = HomeomorphismConfig(),
) -> List[str]:
    """Independently check a claimed embedding; returns violation messages.

    Validates, without re-running the search:

    * every pattern vertex is mapped to a non-empty host chain whose
      consecutive vertices are host edges;
    * every chain vertex's label satisfies the pattern label at the
      configured degree;
    * every pattern edge has a path whose endpoints are the right chain
      tail/head and whose consecutive vertices are host edges;
    * occupation is exclusive: two occupations may share a host vertex only
      when their pattern owners are mutually exclusive (§V.6.2.3).

    An empty list means the embedding is sound.  Used by the test suite's
    soundness properties and available to users auditing repository
    behaviours.
    """
    problems: List[str] = []
    if not result.found:
        return ["result reports no embedding"]

    def degree(required: str, offered: str) -> MatchDegree:
        if ontology is None or not (
            ontology.is_class(required) and ontology.is_class(offered)
        ):
            return MatchDegree.EXACT if required == offered else MatchDegree.FAIL
        return match_concepts(ontology, required, offered)

    # --- vertex mappings ---------------------------------------------------
    for vertex in pattern.vertices():
        chain = result.vertex_mapping.get(vertex.vertex_id)
        if not chain:
            problems.append(f"pattern vertex {vertex.vertex_id} unmapped")
            continue
        for host_id in chain:
            host_vertex = host.vertex(host_id)
            if degree(vertex.label, host_vertex.label) < config.minimum_degree:
                problems.append(
                    f"label of {host_id} ({host_vertex.label}) does not "
                    f"satisfy {vertex.vertex_id} ({vertex.label})"
                )
        for a, b in zip(chain, chain[1:]):
            if not host.has_edge(a, b):
                problems.append(f"chain {chain} breaks at ({a}, {b})")

    # --- edge paths ----------------------------------------------------------
    for edge in pattern.edges():
        key = (edge.source, edge.target)
        path = result.edge_paths.get(key)
        if path is None:
            problems.append(f"pattern edge {key} has no host path")
            continue
        expected_start = result.vertex_mapping.get(edge.source, ("?",))[-1]
        expected_end = result.vertex_mapping.get(edge.target, ("?",))[0]
        if path[0] != expected_start or path[-1] != expected_end:
            problems.append(
                f"path for {key} connects ({path[0]}, {path[-1]}), expected "
                f"({expected_start}, {expected_end})"
            )
        for a, b in zip(path, path[1:]):
            if not host.has_edge(a, b):
                problems.append(f"path for {key} breaks at ({a}, {b})")

    # --- exclusive occupation ---------------------------------------------
    occupations: Dict[str, List[FrozenSet[str]]] = {}
    for pattern_id, chain in result.vertex_mapping.items():
        for host_id in chain:
            occupations.setdefault(host_id, []).append(
                frozenset({pattern_id})
            )
    for key, path in result.edge_paths.items():
        for host_id in path[1:-1]:
            occupations.setdefault(host_id, []).append(frozenset(key))

    def exclusive(a: FrozenSet[str], b: FrozenSet[str]) -> bool:
        return any(
            pattern.vertex(p).mutually_exclusive_with(pattern.vertex(q))
            for p in a
            for q in b
        )

    for host_id, owners in occupations.items():
        for i, owner_a in enumerate(owners):
            for owner_b in owners[i + 1:]:
                if owner_a == owner_b:
                    continue
                if not exclusive(owner_a, owner_b):
                    problems.append(
                        f"host vertex {host_id} shared by non-exclusive "
                        f"occupations {sorted(owner_a)} and {sorted(owner_b)}"
                    )
    return problems


def find_homeomorphism(
    pattern: BehaviouralGraph,
    host: BehaviouralGraph,
    ontology: Optional[Ontology] = None,
    config: HomeomorphismConfig = HomeomorphismConfig(),
    match_cache: Optional[MatchCache] = None,
) -> HomeomorphismResult:
    """Determine whether ``pattern`` is homeomorphic to a subgraph of
    ``host`` under the extended (semantic, data-constrained, split-capable,
    vertex-disjoint) definition of §V.6.

    ``match_cache`` lets callers that probe many hosts against one ontology
    (repository scans, behavioural adaptation) share memoised vertex-label
    gradings across searches."""
    started = time.perf_counter()
    matcher = _Matcher(pattern, host, ontology, config, match_cache)
    report, candidate_map = matcher.preliminary()
    if not report.passed:
        return HomeomorphismResult(
            found=False,
            preliminary=report,
            elapsed_seconds=time.perf_counter() - started,
        )
    outcome = matcher.search(candidate_map)
    elapsed = time.perf_counter() - started
    if outcome is None:
        return HomeomorphismResult(
            found=False,
            preliminary=report,
            backtrack_steps=matcher.steps,
            elapsed_seconds=elapsed,
        )
    mapping, paths = outcome
    return HomeomorphismResult(
        found=True,
        vertex_mapping=mapping,
        edge_paths=paths,
        preliminary=report,
        backtrack_steps=matcher.steps,
        elapsed_seconds=elapsed,
    )
