"""Plain-text rendering of experiment results.

The benchmarks print the same rows/series the paper's figures plot; these
helpers keep that output consistent and diff-able (EXPERIMENTS.md records
them verbatim).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.harness import Sweep, Timing


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """A fixed-width table with a rule under the header."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(sweep: Sweep, keys: Optional[Sequence[str]] = None) -> str:
    """Render a sweep as a table: x column + one column per series key."""
    if keys is None:
        seen: List[str] = []
        for point in sweep.points:
            for key in point.values:
                if key not in seen:
                    seen.append(key)
        keys = seen
    headers = [sweep.x_label] + list(keys)
    rows = [
        [point.x] + [point.values.get(key, "") for key in keys]
        for point in sweep.points
    ]
    return render_table(headers, rows, title=sweep.name)


def sweep_to_dict(sweep: Sweep) -> Dict[str, Any]:
    """A JSON-serialisable form of a sweep.

    Plain values serialise as numbers; :class:`Timing` values expand into
    their full run-to-run spread (median/min/max/mean/stdev/repetitions),
    so benchmark JSON captures measurement noise, not just the median.
    """
    return {
        "name": sweep.name,
        "x_label": sweep.x_label,
        "points": [
            {
                "x": point.x,
                "values": {
                    key: (
                        value.summary()
                        if isinstance(value, Timing)
                        else value
                    )
                    for key, value in point.values.items()
                },
            }
            for point in sweep.points
        ],
    }


def render_json(sweep: Sweep) -> str:
    """The sweep as pretty-printed JSON (what benchmarks persist)."""
    return json.dumps(sweep_to_dict(sweep), indent=2, sort_keys=True)


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
