"""Experiment harness reproducing the paper's evaluation (S14, Ch. VI §3).

* :mod:`repro.experiments.workloads` — synthetic workloads matching the
  paper's set-up: ``n``-activity tasks, ``N`` candidate services per
  activity, ``k`` global constraints at a controlled tightness.
* :mod:`repro.experiments.harness` — timed sweeps with repetitions and the
  optimality metric (utility vs the exhaustive optimum).
* :mod:`repro.experiments.drivers` — deterministic open-loop (Poisson,
  bursty ON-OFF) and closed-loop (N clients, think time) workload drivers
  feeding any ``submit`` surface, with windowed latency/goodput reports.
* :mod:`repro.experiments.figures` — one entry point per paper figure or
  table; each returns the same series the paper plots.
* :mod:`repro.experiments.reporting` — plain-text table rendering for the
  benchmark output.
"""

from repro.experiments.drivers import (
    ClosedLoopDriver,
    DriverReport,
    OnOffArrivals,
    OpenLoopDriver,
    PoissonArrivals,
    RequestRecord,
)
from repro.experiments.harness import ExperimentPoint, Sweep, measure, optimality
from repro.experiments.reporting import render_series, render_table
from repro.experiments.workloads import Workload, WorkloadSpec, make_workload

__all__ = [
    "ClosedLoopDriver",
    "DriverReport",
    "ExperimentPoint",
    "OnOffArrivals",
    "OpenLoopDriver",
    "PoissonArrivals",
    "RequestRecord",
    "Sweep",
    "Workload",
    "WorkloadSpec",
    "make_workload",
    "measure",
    "optimality",
    "render_series",
    "render_table",
]
