"""Seeded differential fuzzing of the selection path (§VI.3.2 tooling).

The exact branch-and-bound oracle (:mod:`repro.composition.exact`) makes a
classic correctness harness possible: throw randomized selection problems —
random pattern trees, candidate pools, constraint sets, weights and
aggregation approaches — at QASSA and every baseline, and check each
outcome against the oracle:

* **oracle ground truth** — the oracle's plan must be internally consistent
  (recomputed aggregate, utility and feasibility match what the plan
  claims) and byte-identical to :class:`ExhaustiveSelection` wherever the
  full enumeration is tractable;
* **feasibility agreement** — a heuristic may *miss* a feasible solution,
  but it must never produce one when the oracle proves infeasibility, and
  a returned plan's ``feasible`` flag must match re-evaluation;
* **utility ordering** — no feasible heuristic plan may beat the oracle's
  optimum, and each selector must be deterministic under its seed.

Every divergence is reported with its generating seed, so a failure
reproduces with one :func:`generate_instance` call and becomes a pinned
regression test (see ``tests/test_selection_differential.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SelectionError
from repro.qos.properties import QoSProperty
from repro.composition.aggregation import AggregationApproach
from repro.composition.baselines import (
    ExhaustiveSelection,
    GeneticSelection,
    GreedySelection,
    RandomSelection,
)
from repro.composition.exact import ExactSelection
from repro.composition.qassa import QASSA, QassaConfig
from repro.composition.request import UserRequest
from repro.composition.selection import (
    CandidateSets,
    CompositionPlan,
    evaluate_assignment,
    make_global_normalizer,
)
from repro.composition.task import (
    Leaf,
    Node,
    Task,
    conditional,
    leaf,
    loop,
    parallel,
    sequence,
)
from repro.experiments.workloads import (
    EXPERIMENT_PROPERTIES,
    constraints_at_tightness,
)
from repro.services.generator import QoSDistribution, ServiceGenerator

#: Utility comparisons tolerate this much float noise (both sides are
#: computed through the identical normaliser/aggregation pipeline, so real
#: divergences are orders of magnitude larger).
UTILITY_EPS = 1e-9


@dataclass(frozen=True)
class FuzzSpec:
    """Size envelope of generated instances."""

    max_activities: int = 4
    max_services: int = 6
    max_constraints: int = 4
    pattern_probability: float = 0.5
    tractable_cap: int = 4000    # run the full enumeration below this


@dataclass
class FuzzInstance:
    """One randomized selection problem, fully determined by its seed."""

    seed: int
    task: Task
    request: UserRequest
    candidates: CandidateSets
    properties: Dict[str, QoSProperty]
    approach: AggregationApproach

    @property
    def search_space(self) -> int:
        return self.candidates.search_space()


@dataclass
class DifferentialReport:
    """Outcome of one differential check."""

    seed: int
    search_space: int
    tractable: bool
    oracle_feasible: Optional[bool] = None
    oracle_nodes: float = 0.0
    qassa_gap: Optional[float] = None
    divergences: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


def _random_tree(rng: random.Random, leaves: List[Leaf]) -> Node:
    """A random pattern tree over the given leaves."""
    if len(leaves) == 1:
        node: Node = leaves[0]
        if rng.random() < 0.25:
            max_it = rng.randint(1, 4)
            node = loop(
                node, max_iterations=max_it,
                expected_iterations=rng.uniform(1.0, float(max_it)),
            )
        return node
    cut = rng.randint(1, len(leaves) - 1)
    left = _random_tree(rng, leaves[:cut])
    right = _random_tree(rng, leaves[cut:])
    kind = rng.random()
    if kind < 0.5:
        return sequence(left, right)
    if kind < 0.75:
        return parallel(left, right)
    p = rng.uniform(0.1, 0.9)
    return conditional(left, right, probabilities=(p, 1.0 - p))


def generate_instance(
    seed: int, spec: FuzzSpec = FuzzSpec()
) -> FuzzInstance:
    """Deterministically generate one randomized selection problem."""
    rng = random.Random(seed)
    prop_names = rng.sample(
        sorted(EXPERIMENT_PROPERTIES), rng.randint(2, 5)
    )
    properties = {name: EXPERIMENT_PROPERTIES[name] for name in prop_names}

    n_activities = rng.randint(1, spec.max_activities)
    leaves = [leaf(f"A{i}", f"task:Cap{i}") for i in range(n_activities)]
    if n_activities > 1 and rng.random() < spec.pattern_probability:
        root = _random_tree(rng, leaves)
    else:
        root = sequence(*leaves) if n_activities > 1 else leaves[0]
    task = Task(f"fuzz-{seed}", root)

    approach = rng.choice(list(AggregationApproach))
    generator = ServiceGenerator(
        properties,
        distribution=rng.choice(list(QoSDistribution)),
        seed=seed,
        tradeoff=rng.choice((0.0, 0.0, 0.5, 0.9)),
    )
    pools = {
        activity.name: generator.candidates(
            activity.capability, rng.randint(1, spec.max_services)
        )
        for activity in task.activities
    }
    candidates = CandidateSets(task, pools)

    n_constraints = rng.randint(0, min(spec.max_constraints, len(prop_names)))
    constrained = rng.sample(prop_names, n_constraints)
    constraints = constraints_at_tightness(
        task, candidates, properties, constrained,
        tightness=rng.uniform(0.05, 0.95), approach=approach,
    )

    weighted = rng.sample(prop_names, rng.randint(0, len(prop_names)))
    weights = {
        name: rng.choice((0.0, 0.5, 1.0, 2.0, rng.random()))
        for name in weighted
    }
    request = UserRequest(task=task, constraints=constraints, weights=weights)
    return FuzzInstance(
        seed=seed,
        task=task,
        request=request,
        candidates=candidates,
        properties=properties,
        approach=approach,
    )


# ----------------------------------------------------------------------
# selector runners
# ----------------------------------------------------------------------
def _run(selector, instance: FuzzInstance, **kwargs):
    """(plan, error) — exactly one is None."""
    try:
        return selector.select(
            instance.request, instance.candidates, **kwargs
        ), None
    except SelectionError as exc:
        return None, exc


def _plans_identical(a: CompositionPlan, b: CompositionPlan) -> bool:
    return (
        a.service_ids() == b.service_ids()
        and a.utility == b.utility
        and a.feasible == b.feasible
        and a.aggregated_qos == b.aggregated_qos
    )


def _check_consistency(
    label: str, plan: CompositionPlan, instance: FuzzInstance,
    divergences: List[str],
) -> None:
    """A plan must agree with a from-scratch re-evaluation of its binding."""
    properties = {
        name: instance.properties[name]
        for name in (
            instance.request.relevant_properties or tuple(instance.properties)
        )
    }
    normalizer = make_global_normalizer(
        instance.task, instance.candidates, properties, instance.approach
    )
    aggregated, utility, feasible = evaluate_assignment(
        instance.task, instance.request, plan.binding(), properties,
        normalizer, instance.approach,
    )
    if plan.feasible != feasible:
        divergences.append(
            f"{label}: plan.feasible={plan.feasible} but re-evaluation "
            f"says {feasible}"
        )
    if aggregated != plan.aggregated_qos:
        divergences.append(
            f"{label}: plan.aggregated_qos {plan.aggregated_qos!r} != "
            f"re-aggregated {aggregated!r}"
        )
    if abs(utility - plan.utility) > UTILITY_EPS:
        divergences.append(
            f"{label}: plan.utility {plan.utility!r} != re-scored "
            f"{utility!r}"
        )


def check_instance(
    instance: FuzzInstance,
    spec: FuzzSpec = FuzzSpec(),
) -> DifferentialReport:
    """Run the oracle, QASSA and the four baselines; cross-check outcomes."""
    report = DifferentialReport(
        seed=instance.seed,
        search_space=instance.search_space,
        tractable=instance.search_space <= spec.tractable_cap,
    )
    div = report.divergences
    props = instance.properties
    approach = instance.approach
    seed = instance.seed

    oracle = ExactSelection(props, approach)
    oracle_plan, oracle_err = _run(oracle, instance)
    report.oracle_feasible = oracle_plan is not None
    if oracle_plan is not None:
        report.oracle_nodes = oracle_plan.statistics.extra.get(
            "nodes_expanded", 0.0
        )
        _check_consistency("oracle", oracle_plan, instance, div)
        # Determinism / replay stability.
        rerun_plan, _ = _run(ExactSelection(props, approach), instance)
        if rerun_plan is None or not _plans_identical(oracle_plan, rerun_plan):
            div.append("oracle: two runs over the same instance diverge")

    # Exact-vs-enumeration agreement wherever enumeration is tractable,
    # in both modes (feasible optimum and best-effort fallback).
    if report.tractable:
        exhaustive = ExhaustiveSelection(props, approach)
        ex_plan, ex_err = _run(exhaustive, instance)
        if (ex_plan is None) != (oracle_plan is None):
            div.append(
                f"oracle vs exhaustive feasibility disagree: "
                f"exhaustive={'plan' if ex_plan else ex_err} "
                f"oracle={'plan' if oracle_plan else oracle_err}"
            )
        elif ex_plan is not None and not _plans_identical(ex_plan, oracle_plan):
            div.append(
                f"oracle plan differs from exhaustive optimum: "
                f"{oracle_plan.service_ids()} u={oracle_plan.utility!r} vs "
                f"{ex_plan.service_ids()} u={ex_plan.utility!r}"
            )
        ex_be, _ = _run(exhaustive, instance, best_effort=True)
        bb_be, _ = _run(ExactSelection(props, approach), instance,
                        best_effort=True)
        if (ex_be is None) != (bb_be is None):
            div.append("best-effort availability disagrees with exhaustive")
        elif ex_be is not None and not _plans_identical(ex_be, bb_be):
            div.append(
                f"best-effort plan differs from exhaustive: "
                f"{bb_be.service_ids()} u={bb_be.utility!r} vs "
                f"{ex_be.service_ids()} u={ex_be.utility!r}"
            )

    heuristics = [
        ("qassa", QASSA(props, approach, config=QassaConfig(seed=seed))),
        ("greedy", GreedySelection(props, approach)),
        ("random", RandomSelection(props, approach, attempts=30, seed=seed)),
        (
            "genetic",
            GeneticSelection(
                props, approach, population_size=16, generations=10,
                seed=seed,
            ),
        ),
    ]
    for label, selector in heuristics:
        plan, err = _run(selector, instance)
        if plan is None:
            continue  # a heuristic may miss feasible solutions
        _check_consistency(label, plan, instance, div)
        if not plan.feasible:
            div.append(
                f"{label}: returned an infeasible plan without best_effort"
            )
        if oracle_plan is None:
            div.append(
                f"{label}: found a feasible plan on an instance the oracle "
                f"proved infeasible"
            )
        elif plan.utility > oracle_plan.utility + UTILITY_EPS:
            div.append(
                f"{label}: feasible utility {plan.utility!r} beats the "
                f"exact optimum {oracle_plan.utility!r}"
            )
        if label == "qassa" and oracle_plan is not None:
            from repro.experiments.harness import optimality

            report.qassa_gap = optimality(plan, oracle_plan)
    return report


def fuzz_sweep(
    seeds: Sequence[int], spec: FuzzSpec = FuzzSpec()
) -> List[DifferentialReport]:
    """Differential-check every seed; one report per instance."""
    return [
        check_instance(generate_instance(seed, spec), spec) for seed in seeds
    ]


# ----------------------------------------------------------------------
# scalar vs vectorized QASSA (the numpy-kernel bit-identity sweep)
# ----------------------------------------------------------------------
def check_vectorized_identity(instance: FuzzInstance) -> List[str]:
    """Divergences between scalar and vectorized QASSA on one instance.

    The vectorized kernels (:mod:`repro.composition.kernels`) promise
    *byte*-identity with the scalar hot path, so everything is compared
    exactly: selected service ids, the full ranked alternate lists, the
    ``repr`` of utility and every aggregated value (catching last-ulp
    drift that ``==``-on-rounded would hide), feasibility — and, on the
    infeasible side, the exception type and message.
    """
    scalar = QASSA(instance.properties, instance.approach,
                   QassaConfig(vectorized=False))
    vector = QASSA(instance.properties, instance.approach,
                   QassaConfig(vectorized=True))
    divergences: List[str] = []
    for best_effort in (False, True):
        s_plan, s_err = _run(scalar, instance, best_effort=best_effort)
        v_plan, v_err = _run(vector, instance, best_effort=best_effort)
        label = "best-effort" if best_effort else "strict"
        if (s_plan is None) != (v_plan is None):
            divergences.append(
                f"{label}: scalar "
                f"{'raised' if s_plan is None else 'planned'} but "
                f"vectorized {'raised' if v_plan is None else 'planned'}"
            )
            continue
        if s_plan is None:
            if type(s_err) is not type(v_err) or str(s_err) != str(v_err):
                divergences.append(
                    f"{label}: exceptions diverged: {s_err!r} != {v_err!r}"
                )
            continue
        if s_plan.service_ids() != v_plan.service_ids():
            divergences.append(
                f"{label}: bindings diverged: "
                f"{s_plan.service_ids()} != {v_plan.service_ids()}"
            )
        for name in s_plan.selections:
            s_ranked = [s.service_id
                        for s in s_plan.selections[name].services]
            v_ranked = [s.service_id
                        for s in v_plan.selections[name].services]
            if s_ranked != v_ranked:
                divergences.append(
                    f"{label}: ranked list of {name!r} diverged"
                )
        if repr(s_plan.utility) != repr(v_plan.utility):
            divergences.append(
                f"{label}: utility drifted: "
                f"{s_plan.utility!r} != {v_plan.utility!r}"
            )
        if s_plan.feasible != v_plan.feasible:
            divergences.append(f"{label}: feasibility diverged")
        for name in s_plan.aggregated_qos:
            s_value = s_plan.aggregated_qos[name]
            v_value = v_plan.aggregated_qos.get(name)
            if repr(s_value) != repr(v_value):
                divergences.append(
                    f"{label}: aggregated {name!r} drifted: "
                    f"{s_value!r} != {v_value!r}"
                )
    return divergences


def vectorized_sweep(
    seeds: Sequence[int], spec: FuzzSpec = FuzzSpec()
) -> Dict[int, List[str]]:
    """Scalar-vs-vectorized check over many seeds; {seed: divergences}.

    Returns an entry per seed (empty list = byte-identical), so callers
    can both assert emptiness and report coverage.
    """
    return {
        seed: check_vectorized_identity(generate_instance(seed, spec))
        for seed in seeds
    }
