"""Synthetic workloads matching the paper's experimental set-up (§VI.3.1).

A workload is: a task of ``n`` abstract activities (sequential by default, or
mixed with parallel/conditional/loop patterns for the aggregation-approach
experiments), ``N`` candidate services per activity with QoS drawn from
uniform or normal laws, preference weights, and ``k`` global constraints
whose bounds sit at a controlled *tightness*:

* ``tightness`` ∈ [0, 1] interpolates each constrained property's bound
  between the best achievable aggregate (0 — usually infeasible) and the
  worst (1 — trivially satisfiable);
* alternatively (Figs. VI.10-11) bounds are pinned at ``n·m`` or
  ``n·(m+σ)`` of the generator's normal law.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.qos.properties import Direction, QoSProperty, STANDARD_PROPERTIES
from repro.services.generator import (
    NormalLaw,
    QoSDistribution,
    ServiceGenerator,
)
from repro.composition.aggregation import (
    AggregationApproach,
    aggregation_bounds,
)
from repro.composition.request import GlobalConstraint, UserRequest
from repro.composition.selection import CandidateSets
from repro.composition.task import (
    Node,
    Task,
    conditional,
    leaf,
    loop,
    parallel,
    sequence,
)

#: Property set of the paper's experiments.
EXPERIMENT_PROPERTIES: Dict[str, QoSProperty] = {
    name: STANDARD_PROPERTIES[name]
    for name in (
        "response_time",
        "cost",
        "availability",
        "reliability",
        "throughput",
        "reputation",
        "security_level",
        "energy",
    )
}

#: Order in which constraints are added as k grows (Fig. VI.5b).
CONSTRAINT_ORDER: Tuple[str, ...] = (
    "response_time",
    "availability",
    "cost",
    "reliability",
    "throughput",
    "reputation",
    "security_level",
    "energy",
)


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic workload."""

    activities: int = 5
    services_per_activity: int = 50
    constraints: int = 4
    tightness: float = 0.6
    weights_on: Tuple[str, ...] = CONSTRAINT_ORDER[:4]
    distribution: QoSDistribution = QoSDistribution.UNIFORM
    mixed_patterns: bool = False
    seed: int = 0


@dataclass
class Workload:
    """A ready-to-run selection problem instance."""

    spec: WorkloadSpec
    task: Task
    request: UserRequest
    candidates: CandidateSets
    generator: ServiceGenerator
    properties: Dict[str, QoSProperty]


def make_task(
    activities: int, mixed_patterns: bool = False, name: str = "workload"
) -> Task:
    """An ``n``-activity task: plain sequence, or (when ``mixed_patterns``)
    a sequence interleaving parallel, conditional and loop patterns so every
    aggregation formula is exercised."""
    leaves = [leaf(f"A{i}", f"task:Cap{i}") for i in range(activities)]
    if not mixed_patterns or activities < 4:
        return Task(name, sequence(*leaves))
    members: List[Node] = [leaves[0]]
    i = 1
    toggle = 0
    while i < len(leaves):
        remaining = len(leaves) - i
        if toggle == 0 and remaining >= 2:
            members.append(parallel(leaves[i], leaves[i + 1]))
            i += 2
        elif toggle == 1 and remaining >= 2:
            members.append(
                conditional(leaves[i], leaves[i + 1], probabilities=(0.6, 0.4))
            )
            i += 2
        elif toggle == 2:
            members.append(loop(leaves[i], max_iterations=3, expected_iterations=2))
            i += 1
        else:
            members.append(leaves[i])
            i += 1
        toggle = (toggle + 1) % 3
    return Task(name, sequence(*members))


def constraints_at_tightness(
    task: Task,
    candidates: CandidateSets,
    properties: Mapping[str, QoSProperty],
    names: Sequence[str],
    tightness: float,
    approach: AggregationApproach = AggregationApproach.PESSIMISTIC,
) -> Tuple[GlobalConstraint, ...]:
    """Constraints interpolated between best and worst achievable aggregates."""
    constraints = []
    for name in names:
        prop = properties[name]
        best, worst = aggregation_bounds(
            task, prop, candidates.extremes(name, prop), approach
        )
        bound = best + tightness * (worst - best)
        constraints.append(GlobalConstraint.natural(prop, bound))
    return tuple(constraints)


def constraints_at_normal_offset(
    task: Task,
    generator: ServiceGenerator,
    properties: Mapping[str, QoSProperty],
    names: Sequence[str],
    sigma_offset: float,
    approach: AggregationApproach = AggregationApproach.PESSIMISTIC,
) -> Tuple[GlobalConstraint, ...]:
    """Constraints pinned at the normal law, as in Figs. VI.10-11.

    For each property the per-activity budget is ``m + sigma_offset·σ`` in
    the *permissive* direction (a negative property gets a larger budget,
    a positive one a smaller floor), aggregated over the task structure.
    """
    constraints = []
    for name in names:
        prop = properties[name]
        law = generator.law(name)
        if prop.direction is Direction.NEGATIVE:
            per_activity = law.mean + sigma_offset * law.stddev
        else:
            per_activity = law.mean - sigma_offset * law.stddev
        lo, hi = prop.value_range
        per_activity = min(max(per_activity, lo), hi)
        extremes = {
            a.name: (per_activity, per_activity) for a in task.activities
        }
        bound, _ = aggregation_bounds(task, prop, extremes, approach)
        constraints.append(GlobalConstraint.natural(prop, bound))
    return tuple(constraints)


def make_workload(
    spec: WorkloadSpec,
    approach: AggregationApproach = AggregationApproach.PESSIMISTIC,
    sigma_offset: Optional[float] = None,
) -> Workload:
    """Build one full problem instance from a spec.

    ``sigma_offset`` switches constraint placement from tightness
    interpolation to the normal-law pinning of Figs. VI.10-11 (it requires
    ``spec.distribution == NORMAL`` to be meaningful).
    """
    properties = dict(EXPERIMENT_PROPERTIES)
    task = make_task(spec.activities, spec.mixed_patterns)
    generator = ServiceGenerator(
        properties, distribution=spec.distribution, seed=spec.seed
    )
    pools = {
        activity.name: generator.candidates(
            activity.capability, spec.services_per_activity
        )
        for activity in task.activities
    }
    candidates = CandidateSets(task, pools)

    constraint_names = CONSTRAINT_ORDER[: spec.constraints]
    if sigma_offset is not None:
        constraints = constraints_at_normal_offset(
            task, generator, properties, constraint_names, sigma_offset, approach
        )
    else:
        constraints = constraints_at_tightness(
            task, candidates, properties, constraint_names, spec.tightness,
            approach,
        )

    weights = {name: 1.0 for name in spec.weights_on}
    request = UserRequest(task=task, constraints=constraints, weights=weights)
    return Workload(
        spec=spec,
        task=task,
        request=request,
        candidates=candidates,
        generator=generator,
        properties=properties,
    )
