"""One entry point per paper figure/table (Ch. VI §3, Ch. IV §5, Ch. V §7).

Every ``fig_*``/``table_*`` function runs the corresponding experiment and
returns one or more :class:`~repro.experiments.harness.Sweep` objects (or a
rendered table) holding exactly the series the paper plots.  The benchmark
files under ``benchmarks/`` are thin wrappers that print these and register
pytest-benchmark timings.

Default problem sizes are scaled so the full suite completes on a laptop in
minutes; pass larger parameters to push towards the paper's exact ranges
(the shapes are stable across sizes).
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional, Sequence, Tuple

from repro.qos.properties import STANDARD_PROPERTIES
from repro.services.generator import QoSDistribution, ServiceGenerator
from repro.composition.aggregation import AggregationApproach
from repro.composition.baselines import (
    ExhaustiveSelection,
    GeneticSelection,
    GreedySelection,
)
from repro.composition.distributed import DistributedQASSA, round_robin_nodes
from repro.composition.qassa import QASSA, QassaConfig
from repro.composition.selection import CandidateSets
from repro.adaptation.behaviour_graph import task_to_graph
from repro.adaptation.homeomorphism import find_homeomorphism
from repro.execution.bpel import parse_bpel, to_bpel
from repro.experiments.harness import Sweep, measure, optimality, try_select
from repro.experiments.workloads import (
    EXPERIMENT_PROPERTIES,
    WorkloadSpec,
    make_task,
    make_workload,
)

_APPROACHES = (
    AggregationApproach.PESSIMISTIC,
    AggregationApproach.OPTIMISTIC,
    AggregationApproach.MEAN,
)


# ----------------------------------------------------------------------
# Table IV.1 — aggregation formulas
# ----------------------------------------------------------------------
def table_iv1() -> List[Tuple[str, str, str, str, str]]:
    """The aggregation-formula table: (property kind, sequence, parallel,
    conditional, loop) — symbolic, verified numerically by the test suite."""
    return [
        ("additive (time)", "Σ qi", "max qi", "branch choice", "n·q"),
        ("additive (resource)", "Σ qi", "Σ qi", "branch choice", "n·q"),
        ("multiplicative", "Π qi", "Π qi", "branch choice", "q^n"),
        ("min (bottleneck)", "min qi", "min qi", "branch choice", "q"),
        ("max", "max qi", "max qi", "branch choice", "q"),
        ("average", "mean qi", "mean qi", "branch choice", "q"),
    ]


# ----------------------------------------------------------------------
# Fig. VI.5 — execution time of centralized QASSA
# ----------------------------------------------------------------------
def fig_vi5a(
    service_counts: Sequence[int] = (10, 25, 50, 75, 100),
    activities: int = 5,
    constraints: int = 4,
    repetitions: int = 3,
    seed: int = 1,
) -> Sweep:
    """Execution time vs number of services per activity (Fig. VI.5a)."""
    sweep = Sweep("Fig VI.5a — QASSA execution time", "services/activity")
    for count in service_counts:
        workload = make_workload(
            WorkloadSpec(
                activities=activities,
                services_per_activity=count,
                constraints=constraints,
                seed=seed,
            )
        )
        qassa = QASSA(workload.properties)
        elapsed, plan = measure(
            lambda: qassa.select(workload.request, workload.candidates),
            repetitions,
        )
        genetic = GeneticSelection(workload.properties, seed=seed)
        genetic_elapsed, _ = measure(
            lambda: genetic.select(
                workload.request, workload.candidates, best_effort=True
            ),
            1,
        )
        greedy = GreedySelection(workload.properties)
        greedy_elapsed, _ = measure(
            lambda: greedy.select(
                workload.request, workload.candidates, best_effort=True
            ),
            repetitions,
        )
        sweep.add(
            count,
            qassa_ms=elapsed * 1000,
            genetic_ms=genetic_elapsed * 1000,
            greedy_ms=greedy_elapsed * 1000,
            feasible=1.0 if plan is not None and plan.feasible else 0.0,
        )
    return sweep


def fig_vi5b(
    constraint_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    activities: int = 5,
    services: int = 50,
    repetitions: int = 3,
    seed: int = 1,
) -> Sweep:
    """Execution time vs number of global QoS constraints (Fig. VI.5b)."""
    sweep = Sweep("Fig VI.5b — QASSA execution time", "#constraints")
    for k in constraint_counts:
        workload = make_workload(
            WorkloadSpec(
                activities=activities,
                services_per_activity=services,
                constraints=k,
                seed=seed,
            )
        )
        qassa = QASSA(workload.properties)
        elapsed, plan = measure(
            lambda: try_select(qassa, workload.request, workload.candidates),
            repetitions,
        )
        sweep.add(
            k,
            qassa_ms=elapsed * 1000,
            feasible=1.0 if plan is not None else 0.0,
        )
    return sweep


# ----------------------------------------------------------------------
# Fig. VI.6 — optimality of centralized QASSA
# ----------------------------------------------------------------------
def fig_vi6a(
    service_counts: Sequence[int] = (10, 20, 30, 40, 50),
    activities: int = 3,
    constraints: int = 4,
    seed: int = 2,
) -> Sweep:
    """Optimality vs services per activity (Fig. VI.6a).

    Uses 3 activities so the exhaustive optimum stays computable; the
    paper's claim (QASSA ≥ ~0.9 of optimum) is size-stable.
    """
    sweep = Sweep("Fig VI.6a — QASSA optimality", "services/activity")
    for count in service_counts:
        workload = make_workload(
            WorkloadSpec(
                activities=activities,
                services_per_activity=count,
                constraints=constraints,
                seed=seed,
            )
        )
        qassa_plan = try_select(
            QASSA(workload.properties), workload.request, workload.candidates
        )
        optimal = try_select(
            ExhaustiveSelection(workload.properties),
            workload.request,
            workload.candidates,
        )
        greedy_plan = GreedySelection(workload.properties).select(
            workload.request, workload.candidates, best_effort=True
        )
        if optimal is None:
            continue  # no feasible composition at this point
        values = {"exhaustive": 1.0}
        if qassa_plan is not None:
            values["qassa"] = optimality(qassa_plan, optimal)
        if greedy_plan.feasible:
            values["greedy"] = optimality(greedy_plan, optimal)
        sweep.add(count, **values)
    return sweep


def fig_vi6b(
    constraint_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    activities: int = 3,
    services: int = 25,
    seed: int = 2,
) -> Sweep:
    """Optimality vs number of constraints (Fig. VI.6b)."""
    sweep = Sweep("Fig VI.6b — QASSA optimality", "#constraints")
    for k in constraint_counts:
        workload = make_workload(
            WorkloadSpec(
                activities=activities,
                services_per_activity=services,
                constraints=k,
                seed=seed,
            )
        )
        qassa_plan = try_select(
            QASSA(workload.properties), workload.request, workload.candidates
        )
        optimal = try_select(
            ExhaustiveSelection(workload.properties),
            workload.request,
            workload.candidates,
        )
        if optimal is None:
            continue
        values = {"exhaustive": 1.0}
        if qassa_plan is not None:
            values["qassa"] = optimality(qassa_plan, optimal)
        sweep.add(k, **values)
    return sweep


# ----------------------------------------------------------------------
# Figs. VI.7 / VI.8 — aggregation approaches
# ----------------------------------------------------------------------
def fig_vi7(
    service_counts: Sequence[int] = (10, 25, 50, 75, 100),
    activities: int = 7,
    constraints: int = 4,
    repetitions: int = 3,
    seed: int = 3,
) -> Dict[str, Sweep]:
    """Execution time per aggregation approach (Fig. VI.7a/b/c) on a task
    mixing parallel, conditional and loop patterns."""
    sweeps: Dict[str, Sweep] = {}
    for approach in _APPROACHES:
        sweep = Sweep(
            f"Fig VI.7 — execution time ({approach.value})",
            "services/activity",
        )
        for count in service_counts:
            workload = make_workload(
                WorkloadSpec(
                    activities=activities,
                    services_per_activity=count,
                    constraints=constraints,
                    mixed_patterns=True,
                    tightness=0.7,
                    seed=seed,
                ),
                approach=approach,
            )
            qassa = QASSA(workload.properties, approach=approach)
            elapsed, plan = measure(
                lambda: try_select(qassa, workload.request, workload.candidates),
                repetitions,
            )
            sweep.add(
                count,
                qassa_ms=elapsed * 1000,
                feasible=1.0 if plan is not None else 0.0,
            )
        sweeps[approach.value] = sweep
    return sweeps


def fig_vi8(
    service_counts: Sequence[int] = (6, 10, 14),
    activities: int = 5,
    constraints: int = 3,
    seed: int = 3,
) -> Dict[str, Sweep]:
    """Optimality per aggregation approach (Fig. VI.8a/b/c).

    The task mixes parallel/conditional/loop patterns — otherwise the three
    approaches coincide and the sub-figures would be identical.  Sizes stay
    small because each point needs three exhaustive optima.
    """
    sweeps: Dict[str, Sweep] = {}
    for approach in _APPROACHES:
        sweep = Sweep(
            f"Fig VI.8 — optimality ({approach.value})", "services/activity"
        )
        for count in service_counts:
            workload = make_workload(
                WorkloadSpec(
                    activities=activities,
                    services_per_activity=count,
                    constraints=constraints,
                    mixed_patterns=True,
                    tightness=0.7,
                    seed=seed,
                ),
                approach=approach,
            )
            qassa_plan = try_select(
                QASSA(workload.properties, approach=approach),
                workload.request,
                workload.candidates,
            )
            optimal = try_select(
                ExhaustiveSelection(workload.properties, approach=approach),
                workload.request,
                workload.candidates,
            )
            if optimal is None:
                continue
            values = {"exhaustive": 1.0}
            if qassa_plan is not None:
                values["qassa"] = optimality(qassa_plan, optimal)
            sweep.add(count, **values)
        sweeps[approach.value] = sweep
    return sweeps


# ----------------------------------------------------------------------
# Fig. VI.9 — the normal distribution law of QoS values
# ----------------------------------------------------------------------
def fig_vi9(
    property_name: str = "response_time",
    samples: int = 5000,
    bins: int = 20,
    seed: int = 4,
) -> Sweep:
    """Histogram + moments of the normal-law QoS generator (Fig. VI.9)."""
    generator = ServiceGenerator(
        EXPERIMENT_PROPERTIES, distribution=QoSDistribution.NORMAL, seed=seed
    )
    values = generator.sample_values(property_name, samples)
    law = generator.law(property_name)
    lo, hi = min(values), max(values)
    width = (hi - lo) / bins if hi > lo else 1.0
    histogram = [0] * bins
    for value in values:
        index = min(int((value - lo) / width), bins - 1)
        histogram[index] += 1

    sweep = Sweep(
        f"Fig VI.9 — {property_name} ~ N(m={law.mean:g}, sigma={law.stddev:g}); "
        f"sample mean={statistics.mean(values):.2f}, "
        f"stdev={statistics.stdev(values):.2f}",
        "bin_center",
    )
    for i, count in enumerate(histogram):
        sweep.add(lo + (i + 0.5) * width, count=float(count))
    return sweep


# ----------------------------------------------------------------------
# Figs. VI.10 / VI.11 — constraints fixed at m and m + sigma
# ----------------------------------------------------------------------
def fig_vi10(
    service_counts: Sequence[int] = (10, 25, 50, 75, 100),
    activities: int = 5,
    constraints: int = 4,
    repetitions: int = 3,
    seed: int = 5,
) -> Dict[str, Sweep]:
    """Execution time with global constraints at m (a) and m+sigma (b)."""
    sweeps: Dict[str, Sweep] = {}
    for label, offset in (("m", 0.0), ("m+sigma", 1.0)):
        sweep = Sweep(
            f"Fig VI.10 — execution time, constraints at {label}",
            "services/activity",
        )
        for count in service_counts:
            workload = make_workload(
                WorkloadSpec(
                    activities=activities,
                    services_per_activity=count,
                    constraints=constraints,
                    distribution=QoSDistribution.NORMAL,
                    seed=seed,
                ),
                sigma_offset=offset,
            )
            qassa = QASSA(workload.properties)
            elapsed, plan = measure(
                lambda: try_select(qassa, workload.request, workload.candidates),
                repetitions,
            )
            sweep.add(
                count,
                qassa_ms=elapsed * 1000,
                feasible=1.0 if plan is not None else 0.0,
            )
        sweeps[label] = sweep
    return sweeps


def fig_vi11(
    service_counts: Sequence[int] = (10, 20, 30, 40),
    activities: int = 3,
    constraints: int = 3,
    seed: int = 5,
) -> Dict[str, Sweep]:
    """Optimality with constraints at m (a) and m+sigma (b)."""
    sweeps: Dict[str, Sweep] = {}
    for label, offset in (("m", 0.0), ("m+sigma", 1.0)):
        sweep = Sweep(
            f"Fig VI.11 — optimality, constraints at {label}",
            "services/activity",
        )
        for count in service_counts:
            workload = make_workload(
                WorkloadSpec(
                    activities=activities,
                    services_per_activity=count,
                    constraints=constraints,
                    distribution=QoSDistribution.NORMAL,
                    seed=seed,
                ),
                sigma_offset=offset,
            )
            qassa_plan = try_select(
                QASSA(workload.properties), workload.request, workload.candidates
            )
            optimal = try_select(
                ExhaustiveSelection(workload.properties),
                workload.request,
                workload.candidates,
            )
            if optimal is None:
                sweep.add(count, infeasible=1.0)
                continue
            values = {"exhaustive": 1.0}
            if qassa_plan is not None:
                values["qassa"] = optimality(qassa_plan, optimal)
            sweep.add(count, **values)
        sweeps[label] = sweep
    return sweeps


# ----------------------------------------------------------------------
# Fig. VI.12 — distributed QASSA phase timings
# ----------------------------------------------------------------------
def fig_vi12(
    node_counts: Sequence[int] = (2, 4, 6, 8, 10),
    activities: int = 8,
    services: int = 40,
    constraints: int = 4,
    seed: int = 6,
) -> Sweep:
    """Local/global phase execution time of distributed QASSA vs nodes."""
    sweep = Sweep("Fig VI.12 — distributed QASSA phases", "#nodes")
    workload = make_workload(
        WorkloadSpec(
            activities=activities,
            services_per_activity=services,
            constraints=constraints,
            seed=seed,
        )
    )
    for nodes in node_counts:
        distributed = DistributedQASSA(workload.properties)
        assignments = round_robin_nodes(
            workload.candidates.activity_names(), nodes
        )
        plan, timing = distributed.select(
            workload.request, workload.candidates, assignments,
            best_effort=True,
        )
        sweep.add(
            nodes,
            local_ms=timing.local_phase_seconds * 1000,
            global_ms=timing.global_phase_seconds * 1000,
            transmission_ms=timing.transmission_seconds * 1000,
            total_ms=timing.total_seconds * 1000,
        )
    return sweep


# ----------------------------------------------------------------------
# Fig. VI.13 — abstract BPEL -> behavioural graph transformation
# ----------------------------------------------------------------------
def fig_vi13(
    activity_counts: Sequence[int] = (10, 25, 50, 100, 150, 200),
    repetitions: int = 5,
) -> Sweep:
    """Transformation time of abstract BPEL specs into behavioural graphs."""
    sweep = Sweep("Fig VI.13 — BPEL -> behavioural graph", "#activities")
    for count in activity_counts:
        task = make_task(count, mixed_patterns=True, name=f"bpel-{count}")
        document = to_bpel(task)

        def transform():
            parsed = parse_bpel(document)
            return task_to_graph(parsed)

        elapsed, graph = measure(transform, repetitions)
        sweep.add(
            count,
            transform_ms=elapsed * 1000,
            vertices=float(graph.vertex_count()),
            edges=float(graph.edge_count()),
        )
    return sweep


# ----------------------------------------------------------------------
# Ch. V §7 — behavioural adaptation (homeomorphism) evaluation
# ----------------------------------------------------------------------
def exp_ch5_homeomorphism(
    sizes: Sequence[int] = (4, 6, 8, 10, 12),
    repetitions: int = 3,
) -> Sweep:
    """Homeomorphism determination time vs pattern size.

    Pattern = sequential task of n activities; host = the same task with an
    extra interleaved activity after each original one (so every pattern
    edge maps to a 2-edge path — the worst common case for path search).
    """
    from repro.composition.task import Task, leaf, sequence
    from repro.semantics.ontology import Ontology

    sweep = Sweep("Ch V §7 — homeomorphism determination", "#pattern vertices")
    for n in sizes:
        ontology = Ontology("bench-tasks")
        root = ontology.declare_class("task:UserActivity")
        for i in range(n):
            ontology.declare_class(f"task:Cap{i}", [root])
        ontology.declare_class("task:Extra", [root])

        pattern_task = Task(
            "pattern", sequence(*[leaf(f"P{i}", f"task:Cap{i}") for i in range(n)])
        )
        host_members = []
        for i in range(n):
            host_members.append(leaf(f"H{i}", f"task:Cap{i}"))
            host_members.append(leaf(f"X{i}", "task:Extra"))
        host_task = Task("host", sequence(*host_members))

        pattern = task_to_graph(pattern_task)
        host = task_to_graph(host_task)

        elapsed, result = measure(
            lambda: find_homeomorphism(pattern, host, ontology), repetitions
        )
        sweep.add(
            n,
            determination_ms=elapsed * 1000,
            found=1.0 if result.found else 0.0,
            backtrack_steps=float(result.backtrack_steps),
        )
    return sweep


# ----------------------------------------------------------------------
# Adaptation effectiveness — the thesis' motivation quantified
# ----------------------------------------------------------------------
def exp_adaptation_effectiveness(
    sessions: int = 6,
    executions_per_session: int = 12,
    kill_every: int = 2,
    target_activity: str = "Order",
    seed: int = 9,
) -> Sweep:
    """Success rate of a repeatedly executed composition under targeted
    churn, with vs without QoS-driven adaptation.

    Setup: a shopping-scenario composition is executed
    ``executions_per_session`` times; every ``kill_every`` executions the
    service currently bound to ``target_activity`` is killed — the worst
    realistic case: one capability's providers keep leaving.  Both arms keep
    dynamic binding and retries; the *adapted* arm additionally runs the
    adaptation manager, whose substitution (backed by a fresh discovery
    round) replaces dead alternates.  The static arm's ranked list only
    shrinks, so binding eventually starves.
    """
    from repro.env.scenarios import build_shopping_scenario
    from repro.middleware.qasom import QASOM

    sweep = Sweep(
        "Adaptation effectiveness — execution success rate under churn",
        "session",
    )
    for session in range(sessions):
        results = {}
        for adapt in (True, False):
            scenario = build_shopping_scenario(
                services_per_activity=8, seed=seed + session
            )
            middleware = QASOM.for_environment(
                scenario.environment,
                scenario.properties,
                ontology=scenario.ontology,
                repository=scenario.repository,
            )
            plan = middleware.submit(scenario.request, execute=False).plan()
            manager = (
                middleware.adaptation_manager(plan, allow_behavioural=False)
                if adapt
                else None
            )
            successes = 0
            for i in range(executions_per_session):
                if i % kill_every == kill_every - 1:
                    # Kill whichever ranked service would actually serve the
                    # target activity next (the live head of the list), so
                    # both arms face the same pressure.
                    victim = next(
                        (
                            s
                            for s in plan.selections[target_activity].services
                            if scenario.environment.is_alive(s)
                        ),
                        None,
                    )
                    if victim is not None:
                        scenario.environment.kill_service(victim.service_id)
                        if manager is not None:
                            trigger = middleware.monitor.report_failure(
                                victim.service_id, float(i)
                            )
                            manager.handle(trigger)
                outcome = middleware.submit(plan=plan, adapt=False).result()
                if outcome.report.succeeded:
                    successes += 1
            results["adapted" if adapt else "static"] = (
                successes / executions_per_session
            )
        sweep.add(session, **results)
    return sweep


# ----------------------------------------------------------------------
# Ch. IV §5 — QASSA vs baselines at the default workload point
# ----------------------------------------------------------------------
def exp_ch4_summary(
    activities: int = 4,
    services: int = 25,
    constraints: int = 4,
    seed: int = 8,
) -> List[Tuple[str, float, float, bool]]:
    """(algorithm, time ms, optimality, feasible) rows for the summary
    comparison of Ch. IV §5."""
    workload = make_workload(
        WorkloadSpec(
            activities=activities,
            services_per_activity=services,
            constraints=constraints,
            seed=seed,
        )
    )
    optimal = ExhaustiveSelection(workload.properties).select(
        workload.request, workload.candidates
    )
    rows: List[Tuple[str, float, float, bool]] = [
        (
            "exhaustive",
            optimal.statistics.elapsed_seconds * 1000,
            1.0,
            True,
        )
    ]
    for name, selector in (
        ("qassa", QASSA(workload.properties)),
        ("greedy", GreedySelection(workload.properties)),
        ("genetic", GeneticSelection(workload.properties, seed=seed)),
    ):
        plan = selector.select(
            workload.request, workload.candidates, best_effort=True
        )
        rows.append(
            (
                name,
                plan.statistics.elapsed_seconds * 1000,
                optimality(plan, optimal) if plan.feasible else 0.0,
                plan.feasible,
            )
        )
    return rows
