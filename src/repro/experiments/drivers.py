"""Queueing workload drivers: open-loop and closed-loop load generation.

The benchmarks used to hand-roll their request loops (submit-all-then-
drain, or submit-and-wait one at a time).  Those loops are workload
*models* with names in queueing theory, so this module makes them explicit
and reusable:

* **open loop** (:class:`OpenLoopDriver`) — arrivals come from an external
  process that does not care whether the system keeps up; the definitive
  overload model.  Arrival timing comes from a deterministic process on
  the simulated clock — :class:`PoissonArrivals` (M/·/· traffic) or
  :class:`OnOffArrivals` (bursty ON-OFF traffic) — or, with no process,
  requests are submitted back-to-back (the saturation limit);
* **closed loop** (:class:`ClosedLoopDriver`) — ``clients`` users each
  wait for their response, think, and submit again; load is self-limiting.
  Rounds are barrier-synced: each round submits one request per client in
  order, waits for all of them, then advances the simulated clock by the
  think time.  With ``clients=1`` and no think time this is exactly the
  serial submit-and-wait pattern.

Both drivers submit through any ``submit(request, **options) ->
RunHandle`` callable — :meth:`repro.middleware.qasom.QASOM.submit` (inline)
or :meth:`repro.runtime.runtime.MiddlewareRuntime.submit` (pooled) — and
return a :class:`DriverReport`: per-request :class:`RequestRecord` rows
plus windowed latency/availability series and the SLO-bounded goodput the
tail-latency benchmark gates on.

Everything is seeded and keyed to the simulated clock, so a workload is a
pure function of ``(seed, request list)`` — replaying one reproduces the
same arrival timeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ExecutionError
from repro.observability.windows import WindowedHistogram
from repro.runtime.handle import RequestStatus, RunHandle

SubmitFn = Callable[..., RunHandle]


# ----------------------------------------------------------------------
# arrival processes
# ----------------------------------------------------------------------
class PoissonArrivals:
    """Deterministic Poisson arrivals: i.i.d. exponential inter-arrivals.

    ``rate`` is the mean arrival rate λ in requests per simulated second;
    the seeded RNG makes the timeline reproducible.
    """

    def __init__(self, rate: float, *, seed: int = 0) -> None:
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        self.rate = float(rate)
        self.seed = seed

    def times(self, count: int, start: float = 0.0) -> List[float]:
        """The first ``count`` absolute arrival times from ``start``."""
        rng = random.Random(self.seed)
        at = start
        arrivals = []
        for _ in range(count):
            at += rng.expovariate(self.rate)
            arrivals.append(at)
        return arrivals

    def __repr__(self) -> str:
        return f"PoissonArrivals(rate={self.rate:g}/s, seed={self.seed})"


class OnOffArrivals:
    """Bursty ON-OFF arrivals: Poisson bursts separated by quiet gaps.

    The source alternates between an ON phase of ``on_seconds`` emitting
    Poisson arrivals at ``on_rate``, and an OFF phase of ``off_seconds``
    emitting none (the classic interrupted-Poisson burst model).  Mean
    rate is ``on_rate * on_seconds / (on_seconds + off_seconds)``, but the
    instantaneous rate during a burst is what stresses tail latency.
    """

    def __init__(
        self,
        on_rate: float,
        *,
        on_seconds: float,
        off_seconds: float,
        seed: int = 0,
    ) -> None:
        if on_rate <= 0:
            raise ValueError("burst arrival rate must be positive")
        if on_seconds <= 0 or off_seconds < 0:
            raise ValueError("phase durations must be positive (ON) and "
                             "non-negative (OFF)")
        self.on_rate = float(on_rate)
        self.on_seconds = float(on_seconds)
        self.off_seconds = float(off_seconds)
        self.seed = seed

    def times(self, count: int, start: float = 0.0) -> List[float]:
        """The first ``count`` absolute arrival times from ``start``."""
        rng = random.Random(self.seed)
        period = self.on_seconds + self.off_seconds
        at = start
        arrivals: List[float] = []
        while len(arrivals) < count:
            at += rng.expovariate(self.on_rate)
            # Position within the ON-OFF period; arrivals falling into an
            # OFF phase are deferred to the start of the next burst.
            offset = (at - start) % period
            if offset >= self.on_seconds:
                at += period - offset
            arrivals.append(at)
        return arrivals

    def __repr__(self) -> str:
        return (
            f"OnOffArrivals(on={self.on_rate:g}/s x {self.on_seconds:g}s, "
            f"off={self.off_seconds:g}s, seed={self.seed})"
        )


# ----------------------------------------------------------------------
# per-request records and the report
# ----------------------------------------------------------------------
@dataclass
class RequestRecord:
    """One submitted request: its arrival time and its handle."""

    index: int
    arrival_sim: float
    handle: RunHandle

    @property
    def status(self) -> RequestStatus:
        """The handle's current lifecycle state."""
        return self.handle.status

    @property
    def trace_id(self) -> Optional[str]:
        """The request's causal trace id (None when tracing is off)."""
        return self.handle.trace_id

    @property
    def wall_seconds(self) -> Optional[float]:
        """Wall-clock submission-to-terminal latency (None until then)."""
        return self.handle.total_seconds

    @property
    def sim_seconds(self) -> Optional[float]:
        """Simulated submission-to-terminal latency (None if unstamped)."""
        return self.handle.sim_seconds

    def latency(self, axis: str = "sim") -> Optional[float]:
        """The record's latency on the chosen axis (``"sim"``/``"wall"``).

        The simulated axis falls back to the wall axis when no simulated
        clock stamped the handle, so reports work against bare inline
        middlewares too.
        """
        if axis == "wall":
            return self.wall_seconds
        sim = self.sim_seconds
        return sim if sim is not None else self.wall_seconds


@dataclass
class DriverReport:
    """What one driver run produced: records plus windowed series."""

    records: List[RequestRecord] = field(default_factory=list)
    window_seconds: float = 1.0

    def wait(self, timeout: Optional[float] = None) -> "DriverReport":
        """Block until every submitted handle is terminal; returns self."""
        for record in self.records:
            record.handle.wait(timeout)
        return self

    # -- aggregate counts ----------------------------------------------
    @property
    def submitted(self) -> int:
        """How many requests the driver submitted."""
        return len(self.records)

    def count(self, status: RequestStatus) -> int:
        """How many records are currently in ``status``."""
        return sum(1 for r in self.records if r.status is status)

    @property
    def completed(self) -> int:
        """Requests that finished successfully."""
        return self.count(RequestStatus.DONE)

    @property
    def rejected(self) -> int:
        """Requests refused at admission (backpressure)."""
        return self.count(RequestStatus.REJECTED)

    # -- windowed series -----------------------------------------------
    def latency_windows(self, axis: str = "sim") -> WindowedHistogram:
        """Completed-request latency windowed by *arrival* time."""
        series = WindowedHistogram(
            f"driver_latency_{axis}", window_seconds=self.window_seconds
        )
        for record in self.records:
            if record.status is not RequestStatus.DONE:
                continue
            latency = record.latency(axis)
            if latency is not None:
                series.observe(latency, at=record.arrival_sim,
                               exemplar=record.trace_id)
        return series

    def availability(self) -> Dict[int, float]:
        """Per-arrival-window fraction of requests that completed."""
        totals: Dict[int, int] = {}
        done: Dict[int, int] = {}
        for record in self.records:
            index = int(record.arrival_sim // self.window_seconds)
            totals[index] = totals.get(index, 0) + 1
            if record.status is RequestStatus.DONE:
                done[index] = done.get(index, 0) + 1
        return {
            index: done.get(index, 0) / totals[index]
            for index in sorted(totals)
        }

    # -- SLO-bounded goodput -------------------------------------------
    def goodput(self, slo_seconds: float, axis: str = "sim") -> int:
        """Completions whose latency met the SLO bound.

        Raw completion counts flatter any system that eventually drains
        its queue; goodput only credits responses the user would have
        accepted — completed *and* within ``slo_seconds``.
        """
        good = 0
        for record in self.records:
            if record.status is not RequestStatus.DONE:
                continue
            latency = record.latency(axis)
            if latency is not None and latency <= slo_seconds:
                good += 1
        return good

    def summary(self, slo_seconds: Optional[float] = None) -> Dict[str, Any]:
        """Counts (and goodput, when an SLO bound is given) as one dict."""
        report: Dict[str, Any] = {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "failed": self.count(RequestStatus.FAILED),
            "expired": self.count(RequestStatus.EXPIRED),
            "cancelled": self.count(RequestStatus.CANCELLED),
        }
        if slo_seconds is not None:
            report["goodput"] = self.goodput(slo_seconds)
        return report


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------
def _advance_to(clock: Any, timestamp: float) -> float:
    """Advance a (possibly shared) simulated clock to at least ``timestamp``.

    Runtime workers advance the same clock while executing, so between
    reading ``now`` and advancing, time may move past the target — in
    which case the arrival is simply late and nothing needs advancing.
    """
    while True:
        now = clock.now()
        if now >= timestamp:
            return now
        try:
            return clock.advance_to(timestamp)
        except ExecutionError:
            continue


class OpenLoopDriver:
    """Submit requests at externally-scheduled times, never waiting.

    With an ``arrivals`` process the driver paces submissions on the
    simulated ``clock`` (advancing it to each arrival time); with
    ``arrivals=None`` it submits back-to-back — the saturation limit, and
    exactly the old pooled-benchmark loop.  The returned report's handles
    may still be in flight; drain the runtime (or ``report.wait()``)
    before reading latencies.
    """

    def __init__(
        self,
        submit: SubmitFn,
        *,
        clock: Optional[Any] = None,
        arrivals: Optional[Any] = None,
        window_seconds: float = 1.0,
    ) -> None:
        if arrivals is not None and clock is None:
            raise ValueError("paced arrivals need the simulated clock")
        self.submit = submit
        self.clock = clock
        self.arrivals = arrivals
        self.window_seconds = window_seconds

    def run(
        self, requests: Sequence[Any], **submit_options: Any
    ) -> DriverReport:
        """Submit every request; returns the (possibly in-flight) report."""
        report = DriverReport(window_seconds=self.window_seconds)
        times: Optional[List[float]] = None
        if self.arrivals is not None:
            times = self.arrivals.times(
                len(requests), start=self.clock.now()
            )
        for index, request in enumerate(requests):
            if times is not None:
                arrival = _advance_to(self.clock, times[index])
            else:
                arrival = self.clock.now() if self.clock is not None else 0.0
            handle = self.submit(request, **submit_options)
            report.records.append(RequestRecord(index, arrival, handle))
        return report

    def __repr__(self) -> str:
        pacing = repr(self.arrivals) if self.arrivals else "back-to-back"
        return f"OpenLoopDriver({pacing})"


class ClosedLoopDriver:
    """``clients`` synchronised users: submit, wait, think, repeat.

    Requests are consumed in order, ``clients`` per round; every round
    waits for all its handles (the barrier keeping the number of
    outstanding requests at most ``clients``) and then advances the
    simulated clock by ``think_seconds``.  ``clients=1`` with zero think
    time reproduces the serial submit-and-wait pattern exactly.
    """

    def __init__(
        self,
        submit: SubmitFn,
        *,
        clients: int = 1,
        think_seconds: float = 0.0,
        clock: Optional[Any] = None,
        window_seconds: float = 1.0,
    ) -> None:
        if clients < 1:
            raise ValueError("a closed loop needs at least one client")
        if think_seconds < 0:
            raise ValueError("think time cannot be negative")
        if think_seconds and clock is None:
            raise ValueError("think time needs the simulated clock")
        self.submit = submit
        self.clients = clients
        self.think_seconds = think_seconds
        self.clock = clock
        self.window_seconds = window_seconds

    def run(
        self, requests: Sequence[Any], **submit_options: Any
    ) -> DriverReport:
        """Run the closed loop to exhaustion; all handles are terminal."""
        report = DriverReport(window_seconds=self.window_seconds)
        for round_start in range(0, len(requests), self.clients):
            round_requests = requests[round_start:round_start + self.clients]
            round_records = []
            for offset, request in enumerate(round_requests):
                arrival = self.clock.now() if self.clock is not None else 0.0
                handle = self.submit(request, **submit_options)
                record = RequestRecord(round_start + offset, arrival, handle)
                round_records.append(record)
                report.records.append(record)
            for record in round_records:  # the round barrier
                record.handle.wait()
            if self.think_seconds and self.clock is not None:
                self.clock.advance(self.think_seconds)
        return report

    def __repr__(self) -> str:
        return (
            f"ClosedLoopDriver(clients={self.clients}, "
            f"think={self.think_seconds:g}s)"
        )
