"""Measurement harness: timed sweeps and the optimality metric (§VI.3.2)."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SelectionError
from repro.composition.selection import CompositionPlan


@dataclass
class ExperimentPoint:
    """One sweep point: the x value and the measured series values."""

    x: float
    values: Dict[str, float] = field(default_factory=dict)


@dataclass
class Sweep:
    """A named series over a parameter sweep (one paper sub-figure)."""

    name: str
    x_label: str
    points: List[ExperimentPoint] = field(default_factory=list)

    def series(self, key: str) -> List[Tuple[float, float]]:
        return [(p.x, p.values[key]) for p in self.points if key in p.values]

    def add(self, x: float, **values: float) -> ExperimentPoint:
        point = ExperimentPoint(x=x, values=dict(values))
        self.points.append(point)
        return point


def measure(
    callable_: Callable[[], object], repetitions: int = 3
) -> Tuple[float, object]:
    """(median elapsed seconds, last result) over ``repetitions`` runs."""
    timings: List[float] = []
    result: object = None
    for _ in range(max(repetitions, 1)):
        started = time.perf_counter()
        result = callable_()
        timings.append(time.perf_counter() - started)
    return statistics.median(timings), result


def optimality(plan: CompositionPlan, optimal: CompositionPlan) -> float:
    """The paper's optimality metric: utility(heuristic) / utility(optimum).

    Both plans must have been scored against the same global normaliser
    (which :func:`repro.composition.selection.make_global_normalizer`
    guarantees for identical candidate sets).  Clamped to [0, 1] — a
    heuristic can tie the optimum but never beat a *feasible* optimum; tiny
    float excursions above 1 are measurement noise.
    """
    if optimal.utility <= 0:
        return 1.0 if plan.utility <= 0 else 0.0
    return min(max(plan.utility / optimal.utility, 0.0), 1.0)


def try_select(selector, request, candidates) -> Optional[CompositionPlan]:
    """Run a selector, returning None instead of raising on infeasibility —
    sweep loops keep going when a point admits no feasible composition."""
    try:
        return selector.select(request, candidates)
    except SelectionError:
        return None
