"""Measurement harness: timed sweeps and the optimality metric (§VI.3.2)."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SelectionError
from repro.composition.selection import CompositionPlan


@dataclass
class ExperimentPoint:
    """One sweep point: the x value and the measured series values."""

    x: float
    values: Dict[str, float] = field(default_factory=dict)


@dataclass
class Sweep:
    """A named series over a parameter sweep (one paper sub-figure)."""

    name: str
    x_label: str
    points: List[ExperimentPoint] = field(default_factory=list)

    def series(self, key: str) -> List[Tuple[float, float]]:
        return [(p.x, p.values[key]) for p in self.points if key in p.values]

    def add(self, x: float, **values: float) -> ExperimentPoint:
        point = ExperimentPoint(x=x, values=dict(values))
        self.points.append(point)
        return point


class Timing(float):
    """The median elapsed seconds — still a plain ``float`` to callers —
    carrying the full run-to-run spread as attributes.

    Benchmarks historically kept only the median; the spread (min, mean,
    stdev) is what distinguishes a noisy point from a stable one, so
    :func:`measure` now returns it without breaking ``elapsed * 1000``
    call sites: scaling a Timing scales every sample with it.
    """

    samples: Tuple[float, ...]

    def __new__(cls, samples: Sequence[float]) -> "Timing":
        if not samples:
            raise ValueError("Timing needs at least one sample")
        self = super().__new__(cls, statistics.median(samples))
        self.samples = tuple(float(s) for s in samples)
        return self

    @property
    def median(self) -> float:
        return float(self)

    @property
    def minimum(self) -> float:
        return min(self.samples)

    @property
    def maximum(self) -> float:
        return max(self.samples)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples)

    @property
    def stdev(self) -> float:
        """Sample standard deviation (0.0 with fewer than two samples)."""
        if len(self.samples) < 2:
            return 0.0
        return statistics.stdev(self.samples)

    def summary(self) -> Dict[str, float]:
        """JSON-ready spread record (what benchmark JSON persists)."""
        return {
            "median": self.median,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "stdev": self.stdev,
            "repetitions": float(len(self.samples)),
        }

    def __mul__(self, other: object) -> object:
        if isinstance(other, (int, float)) and not isinstance(other, Timing):
            return Timing([s * other for s in self.samples])
        return NotImplemented

    __rmul__ = __mul__

    def __repr__(self) -> str:
        return (
            f"Timing(median={self.median:.6f}, min={self.minimum:.6f}, "
            f"mean={self.mean:.6f}, stdev={self.stdev:.6f}, "
            f"n={len(self.samples)})"
        )


def measure(
    callable_: Callable[[], object], repetitions: int = 3
) -> Tuple[Timing, object]:
    """(elapsed :class:`Timing`, last result) over ``repetitions`` runs.

    The Timing compares/formats as the median in seconds (backwards
    compatible) and additionally exposes min/max/mean/stdev and the raw
    samples.
    """
    timings: List[float] = []
    result: object = None
    for _ in range(max(repetitions, 1)):
        started = time.perf_counter()
        result = callable_()
        timings.append(time.perf_counter() - started)
    return Timing(timings), result


def measure_traced(
    callable_: Callable[[], object], repetitions: int = 3
) -> Tuple[Timing, object, Dict[str, Dict[str, float]]]:
    """Like :func:`measure`, but with a per-stage breakdown attached.

    Runs the callable under a fresh ambient
    :class:`~repro.observability.Observability` (picked up by any selector,
    binder or engine constructed inside) and aggregates the resulting
    spans by stage name — the "where did the time go" answer that a
    single opaque median can't give.  Returns
    ``(timing, last result, breakdown)``.
    """
    from repro.observability import enabled, stage_breakdown

    with enabled() as obs:
        timing, result = measure(callable_, repetitions)
        breakdown = stage_breakdown(obs.spans)
    return timing, result, breakdown


def optimality(plan: CompositionPlan, optimal: CompositionPlan) -> float:
    """The paper's optimality metric: utility(heuristic) / utility(optimum).

    Both plans must have been scored against the same global normaliser
    (which :func:`repro.composition.selection.make_global_normalizer`
    guarantees for identical candidate sets).  Clamped to [0, 1] — a
    heuristic can tie the optimum but never beat a *feasible* optimum; tiny
    float excursions above 1 are measurement noise.
    """
    if optimal.utility <= 0:
        return 1.0 if plan.utility <= 0 else 0.0
    return min(max(plan.utility / optimal.utility, 0.0), 1.0)


def try_select(selector, request, candidates) -> Optional[CompositionPlan]:
    """Run a selector, returning None instead of raising on infeasibility —
    sweep loops keep going when a point admits no feasible composition."""
    try:
        return selector.select(request, candidates)
    except SelectionError:
        return None
